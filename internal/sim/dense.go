package sim

import (
	"context"
	"fmt"

	"convexcache/internal/trace"
)

// DensePolicy is the allocation-free fast path of the engine. A policy that
// implements it is driven with dense page indices (see trace.Dense) instead
// of raw PageIDs, so both the engine and the policy can keep all per-page
// state in flat slices. The sparse Policy methods remain the fallback for
// interactive runs and direct drivers.
//
// Contract mirrors Policy: DenseVictim must return a resident dense index;
// the engine verifies and fails the run otherwise.
//
// A DensePolicy that additionally implements BatchPolicy is driven in runs
// of up to BatchSize requests per call on observer-free runs; see soa.go.
type DensePolicy interface {
	Policy
	// PrepareDense installs the dense trace view and the cache capacity
	// before the first request of a dense run. Returning false declines the
	// dense path and the engine falls back to the map-based loop.
	PrepareDense(d *trace.Dense, k int) bool
	// DenseHit is OnHit with the page's dense index.
	DenseHit(step int, page int32)
	// DenseInsert is OnInsert with the page's dense index.
	DenseInsert(step int, page int32)
	// DenseVictim is Victim with the requested page's dense index; it
	// returns the dense index of the page to evict.
	DenseVictim(step int, page int32) int32
	// DenseEvict is OnEvict with the evicted page's dense index.
	DenseEvict(step int, page int32)
}

// runDense is the dense engine entry point: residency is a SlotTable
// (struct-of-arrays page->slot, slot->page, slot->tenant), counters live in
// the Result slices, and the Event struct is reused across steps. The
// request loop performs no steady-state allocations.
func runDense(ctx context.Context, tr *trace.Trace, p DensePolicy, cfg Config) (Result, bool, error) {
	return runDenseView(ctx, tr.Dense(), p, cfg)
}

// runDenseView drives the dense engine over an explicit trace view. The
// sharded runner calls it directly with per-shard request subsequences that
// share one global dense remap.
func runDenseView(ctx context.Context, d *trace.Dense, p DensePolicy, cfg Config) (Result, bool, error) {
	if !p.PrepareDense(d, cfg.K) {
		return Result{}, false, nil
	}
	res := Result{
		Policy:         p.Name(),
		K:              cfg.K,
		Steps:          d.Len(),
		EffectiveSteps: effectiveSteps(d.Len(), cfg.WarmupSteps),
		Misses:         make([]int64, d.Tenants),
		Evictions:      make([]int64, d.Tenants),
	}
	// The batched loop requires observer-free runs: per-step events can only
	// come out of the per-step loop. It owns residency itself, so the slot
	// table is only built for the per-step loop below.
	if bp, ok := p.(BatchPolicy); ok && cfg.Observer == nil && !cfg.NoBatch {
		if err := runDenseBatched(ctx, d, bp, cfg, &res); err != nil {
			return Result{}, true, err
		}
		return res, true, nil
	}
	nPages := d.NumPages()
	slotCap := cfg.K
	if slotCap > nPages {
		slotCap = nPages
	}
	st := NewSlotTable(nPages, slotCap)
	done := ctx.Done()
	reported := 0
	var ev Event
	for step, pg := range d.Reqs {
		if step&checkMask == checkMask {
			if done != nil {
				select {
				case <-done:
					return Result{}, true, cancelErr(ctx, step)
				default:
				}
			}
			if cfg.Progress != nil {
				cfg.Progress(step + 1 - reported)
				reported = step + 1
			}
		}
		warm := step < cfg.WarmupSteps
		tenant := d.Owners[pg]
		if st.PageSlot[pg] >= 0 {
			if !warm {
				res.Hits++
			}
			p.DenseHit(step, pg)
			if cfg.Observer != nil {
				ev = Event{Step: step, Req: trace.Request{Page: d.Pages[pg], Tenant: tenant}, Evicted: -1, EvictedTenant: -1, Warmup: warm}
				cfg.Observer(ev)
			}
			continue
		}
		if !warm {
			res.Misses[tenant]++
		}
		evicted := int32(-1)
		var evictedOwner trace.Tenant = -1
		if st.Full() {
			victim := p.DenseVictim(step, pg)
			owner, ok := st.Replace(victim, pg, tenant)
			if !ok {
				return Result{}, true, fmt.Errorf("sim: policy %s returned victim %d not in cache at step %d", p.Name(), victim, step)
			}
			evicted = victim
			evictedOwner = owner
			if !warm {
				res.Evictions[evictedOwner]++
			}
			p.DenseEvict(step, victim)
		} else {
			st.Append(pg, tenant)
		}
		p.DenseInsert(step, pg)
		if cfg.Observer != nil {
			ev = Event{Step: step, Req: trace.Request{Page: d.Pages[pg], Tenant: tenant}, Miss: true, Evicted: -1, EvictedTenant: evictedOwner, Warmup: warm}
			if evicted >= 0 {
				ev.Evicted = d.Pages[evicted]
			}
			cfg.Observer(ev)
		}
	}
	if cfg.Progress != nil && d.Len() > reported {
		cfg.Progress(d.Len() - reported)
	}
	return res, true, nil
}

// runDenseBatched is the batched dense loop: the policy serves runs of up to
// BatchSize requests per StepBatch call, and the engine probes context
// cancellation and progress only at batch boundaries on the CheckEverySteps
// cadence. Batches are split at the warmup boundary so every call is either
// fully warm or fully measured; counters land directly in res via the
// aliased BatchCounters. On cancellation the run aborts at the next batch
// boundary (mid-batch work completes first).
func runDenseBatched(ctx context.Context, d *trace.Dense, p BatchPolicy, cfg Config, res *Result) error {
	bc := BatchCounters{Misses: res.Misses, Evictions: res.Evictions}
	reqs := d.Reqs
	done := ctx.Done()
	reported := 0
	next := CheckEverySteps
	for base := 0; base < len(reqs); {
		end := base + BatchSize
		if end > len(reqs) {
			end = len(reqs)
		}
		warm := base < cfg.WarmupSteps
		if warm && end > cfg.WarmupSteps {
			end = cfg.WarmupSteps
		}
		if err := p.StepBatch(base, reqs[base:end], &bc, warm); err != nil {
			return err
		}
		base = end
		if base >= next {
			next += CheckEverySteps
			if done != nil {
				select {
				case <-done:
					return cancelErr(ctx, base)
				default:
				}
			}
			if cfg.Progress != nil {
				cfg.Progress(base - reported)
				reported = base
			}
		}
	}
	res.Hits = bc.Hits
	if cfg.Progress != nil && len(reqs) > reported {
		cfg.Progress(len(reqs) - reported)
	}
	return nil
}
