// Package sim is the cache simulation engine of the reproduction: it owns
// the cache content set, drives any eviction Policy over a request sequence,
// and accounts per-tenant misses, evictions and convex costs.
//
// The engine is deliberately policy-agnostic: the paper's algorithm
// (internal/core), all baselines (internal/policy) and offline comparators
// implement the same Policy interface, so every experiment compares like
// with like.
package sim

import (
	"context"
	"errors"
	"fmt"

	"convexcache/internal/costfn"
	"convexcache/internal/trace"
)

// Policy chooses eviction victims. The engine owns cache membership; the
// policy only ranks pages. Calls arrive in trace order with the 0-based step
// index.
//
// Contract: Victim must return a page currently in the cache (the engine
// verifies and fails the run otherwise); OnHit/OnInsert/OnEvict must be
// accepted in any interleaving consistent with cache semantics.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// OnHit is invoked when the requested page is already cached.
	OnHit(step int, r trace.Request)
	// OnInsert is invoked after a missed page has been placed in the cache
	// (post-eviction if one was necessary).
	OnInsert(step int, r trace.Request)
	// Victim returns the page to evict to make room for the request r at
	// the given step. It is called only when the cache is full and r is
	// absent.
	Victim(step int, r trace.Request) trace.PageID
	// OnEvict is invoked after the engine removed p from the cache.
	OnEvict(step int, p trace.PageID)
	// Reset restores the policy to its initial state so the instance can
	// be reused for another run.
	Reset()
}

// OfflinePolicy is implemented by policies that need the whole (indexed)
// request sequence in advance, such as Belady's MIN. The engine calls
// Prepare before the first request when the policy implements it.
type OfflinePolicy interface {
	Policy
	// Prepare installs the full indexed trace.
	Prepare(ix *trace.Indexed)
}

// Event is delivered to observers after each simulation step.
type Event struct {
	// Step is the 0-based request index.
	Step int
	// Req is the request served at this step.
	Req trace.Request
	// Miss is true when the page was not cached.
	Miss bool
	// Evicted is the evicted page when an eviction occurred, else -1.
	Evicted trace.PageID
	// EvictedTenant is the owner of Evicted, else -1.
	EvictedTenant trace.Tenant
	// Warmup is true for steps excluded from the Result counters.
	Warmup bool
}

// Observer receives per-step events; used for window series and debugging.
type Observer func(Event)

// Result summarizes one simulation run.
type Result struct {
	// Policy is the policy name.
	Policy string
	// K is the cache size used.
	K int
	// Steps is the number of requests served, including warmup.
	Steps int
	// EffectiveSteps is the number of measured requests: Steps minus the
	// warmup steps excluded from the counters. Hit-rate math over a Result
	// must divide by EffectiveSteps, not Steps.
	EffectiveSteps int
	// Hits is the total hit count.
	Hits int64
	// Misses[i] counts fetches (requests not found in cache) per tenant.
	Misses []int64
	// Evictions[i] counts evictions per tenant.
	Evictions []int64
}

// TotalMisses sums misses over tenants.
func (r Result) TotalMisses() int64 {
	var s int64
	for _, m := range r.Misses {
		s += m
	}
	return s
}

// TotalEvictions sums evictions over tenants.
func (r Result) TotalEvictions() int64 {
	var s int64
	for _, e := range r.Evictions {
		s += e
	}
	return s
}

// Cost evaluates the convex objective sum_i f_i(misses_i) for the run.
// Tenants beyond len(fs) contribute zero cost; this matches the paper's
// dummy flush tenant, which has no SLA.
func (r Result) Cost(fs []costfn.Func) float64 {
	return Cost(fs, r.Misses)
}

// EvictionCost evaluates sum_i f_i(evictions_i), the paper's accounting
// (cost charged on eviction).
func (r Result) EvictionCost(fs []costfn.Func) float64 {
	return Cost(fs, r.Evictions)
}

// Cost computes sum_i f_i(counts_i) over the tenants that have a cost
// function.
func Cost(fs []costfn.Func, counts []int64) float64 {
	total := 0.0
	for i, f := range fs {
		if i >= len(counts) {
			break
		}
		total += f.Value(float64(counts[i]))
	}
	return total
}

// PerTenantCost returns f_i(counts_i) for each tenant with a cost function.
func PerTenantCost(fs []costfn.Func, counts []int64) []float64 {
	out := make([]float64, len(fs))
	for i, f := range fs {
		if i < len(counts) {
			out[i] = f.Value(float64(counts[i]))
		}
	}
	return out
}

// Engine selects which request loop drives the run.
type Engine int

const (
	// EngineAuto (the default) uses the dense engine when the policy
	// implements DensePolicy and accepts the trace, else the map engine.
	EngineAuto Engine = iota
	// EngineMap forces the map-backed engine even for dense-capable
	// policies; used by differential tests that compare the two loops.
	EngineMap
	// EngineDense requires the dense engine and fails the run when the
	// policy does not implement DensePolicy or declines the trace.
	EngineDense
)

// Config controls a simulation run.
type Config struct {
	// K is the cache capacity in pages; must be positive.
	K int
	// Observer, when non-nil, receives an Event per step.
	Observer Observer
	// WarmupSteps excludes the first N requests from the Result counters
	// (the policy still sees them), for steady-state measurement. Events
	// are delivered for warmup steps too, with Warmup set.
	WarmupSteps int
	// Engine pins the run to one of the two request loops; see EngineAuto.
	Engine Engine
	// NoBatch forces the per-step dense loop even for policies implementing
	// BatchPolicy. Used by the differential oracles and tests that compare
	// the batched loop against the per-step reference.
	NoBatch bool
	// Progress, when non-nil, is invoked roughly every CheckEverySteps
	// steps with the number of steps completed since the previous call,
	// and once more after the last request with the remainder. The deltas
	// sum to the trace length. It shares the cancellation-check cadence,
	// so live metrics (steps/sec feeds) cost nothing per step.
	Progress func(delta int)
}

// CheckEverySteps is the cadence (in steps) at which both engines check
// context cancellation and report Progress. It is a power of two so the
// in-loop test compiles to a mask.
const CheckEverySteps = 8192

const checkMask = CheckEverySteps - 1

// cancelErr wraps the context's cause so errors.Is(err, context.Canceled)
// (or DeadlineExceeded) holds for callers deciding how to report the abort.
func cancelErr(ctx context.Context, step int) error {
	return fmt.Errorf("sim: run aborted at step %d: %w", step, context.Cause(ctx))
}

// Run drives policy p over the trace with cache size cfg.K.
//
// Semantics follow the paper's model: a requested page must be in cache; on
// a miss with a full cache the policy's Victim is evicted first. Misses are
// counted per tenant on every fetch; evictions per owner of the evicted
// page.
//
// Run never aborts early; use RunContext to bound a run by cancellation or
// deadline.
func Run(tr *trace.Trace, p Policy, cfg Config) (Result, error) {
	return RunContext(context.Background(), tr, p, cfg)
}

// RunContext is Run bounded by ctx: both engines check ctx every
// CheckEverySteps steps (and once before the first request), so a client
// disconnect or per-request deadline stops a multi-million-step replay
// within a few microseconds of work instead of burning CPU to completion.
// On abort it returns a zero Result and an error wrapping context.Cause(ctx).
func RunContext(ctx context.Context, tr *trace.Trace, p Policy, cfg Config) (Result, error) {
	if cfg.K <= 0 {
		return Result{}, errors.New("sim: cache size must be positive")
	}
	if ctx.Err() != nil {
		return Result{}, cancelErr(ctx, 0)
	}
	if op, ok := p.(OfflinePolicy); ok {
		op.Prepare(trace.Index(tr))
	}
	if cfg.Engine != EngineMap {
		if dp, ok := p.(DensePolicy); ok {
			if res, handled, err := runDense(ctx, tr, dp, cfg); handled {
				return res, err
			}
		}
		if cfg.Engine == EngineDense {
			return Result{}, fmt.Errorf("sim: policy %s does not support the dense engine", p.Name())
		}
	}
	return runMap(ctx, tr, p, cfg)
}

// effectiveSteps returns the number of measured (non-warmup) steps.
func effectiveSteps(total, warmup int) int {
	if warmup <= 0 {
		return total
	}
	if warmup >= total {
		return 0
	}
	return total - warmup
}

// runMap is the original map-backed engine, kept as the fallback for
// policies without a dense fast path.
func runMap(ctx context.Context, tr *trace.Trace, p Policy, cfg Config) (Result, error) {
	nTenants := tr.NumTenants()
	res := Result{
		Policy:         p.Name(),
		K:              cfg.K,
		Steps:          tr.Len(),
		EffectiveSteps: effectiveSteps(tr.Len(), cfg.WarmupSteps),
		Misses:         make([]int64, nTenants),
		Evictions:      make([]int64, nTenants),
	}
	done := ctx.Done()
	reported := 0
	cache := make(map[trace.PageID]trace.Tenant, cfg.K)
	for step, r := range tr.Requests() {
		if step&checkMask == checkMask {
			if done != nil {
				select {
				case <-done:
					return Result{}, cancelErr(ctx, step)
				default:
				}
			}
			if cfg.Progress != nil {
				cfg.Progress(step + 1 - reported)
				reported = step + 1
			}
		}
		warm := step < cfg.WarmupSteps
		ev := Event{Step: step, Req: r, Evicted: -1, EvictedTenant: -1, Warmup: warm}
		if _, ok := cache[r.Page]; ok {
			if !warm {
				res.Hits++
			}
			p.OnHit(step, r)
		} else {
			ev.Miss = true
			if !warm {
				res.Misses[r.Tenant]++
			}
			if len(cache) >= cfg.K {
				victim := p.Victim(step, r)
				owner, ok := cache[victim]
				if !ok {
					return Result{}, fmt.Errorf("sim: policy %s returned victim %d not in cache at step %d", p.Name(), victim, step)
				}
				delete(cache, victim)
				if !warm {
					res.Evictions[owner]++
				}
				p.OnEvict(step, victim)
				ev.Evicted = victim
				ev.EvictedTenant = owner
			}
			cache[r.Page] = r.Tenant
			p.OnInsert(step, r)
		}
		if cfg.Observer != nil {
			cfg.Observer(ev)
		}
	}
	if cfg.Progress != nil && tr.Len() > reported {
		cfg.Progress(tr.Len() - reported)
	}
	return res, nil
}

// MustRun is Run that panics on error; for tests and examples with
// known-good configurations.
func MustRun(tr *trace.Trace, p Policy, cfg Config) Result {
	res, err := Run(tr, p, cfg)
	if err != nil {
		panic(err)
	}
	return res
}
