package sim

import (
	"convexcache/internal/stats"
	"convexcache/internal/trace"
)

// Collector is a rich Observer gathering operational metrics beyond the
// Result counters: eviction-age distribution (how long pages live in
// cache), per-tenant hit-rate time series, and residency occupancy shares.
// Install Collector.Observe in Config.
type Collector struct {
	tenants int
	window  int

	insertedAt map[trace.PageID]int
	ages       []float64

	// hitsPerWindow / reqsPerWindow drive the hit-rate series.
	hitsPerWindow [][]int64
	reqsPerWindow [][]int64

	// residency[i] is tenant i's current cached-page count; occupancy
	// accumulates per-step shares for the average.
	residency []int64
	occupancy []float64
	steps     int
}

// NewCollector builds a collector for the given tenant count and hit-rate
// window length.
func NewCollector(tenants, window int) *Collector {
	if window <= 0 {
		window = 1
	}
	return &Collector{
		tenants:    tenants,
		window:     window,
		insertedAt: make(map[trace.PageID]int),
		residency:  make([]int64, tenants),
		occupancy:  make([]float64, tenants),
	}
}

// Observe implements the Observer contract.
func (c *Collector) Observe(ev Event) {
	w := ev.Step / c.window
	for len(c.hitsPerWindow) <= w {
		c.hitsPerWindow = append(c.hitsPerWindow, make([]int64, c.tenants))
		c.reqsPerWindow = append(c.reqsPerWindow, make([]int64, c.tenants))
	}
	if int(ev.Req.Tenant) < c.tenants {
		c.reqsPerWindow[w][ev.Req.Tenant]++
		if !ev.Miss {
			c.hitsPerWindow[w][ev.Req.Tenant]++
		}
	}
	if ev.Evicted >= 0 {
		if at, ok := c.insertedAt[ev.Evicted]; ok {
			c.ages = append(c.ages, float64(ev.Step-at))
			delete(c.insertedAt, ev.Evicted)
		}
		if int(ev.EvictedTenant) < c.tenants && ev.EvictedTenant >= 0 {
			c.residency[ev.EvictedTenant]--
		}
	}
	if ev.Miss {
		c.insertedAt[ev.Req.Page] = ev.Step
		if int(ev.Req.Tenant) < c.tenants {
			c.residency[ev.Req.Tenant]++
		}
	}
	total := int64(0)
	for _, r := range c.residency {
		total += r
	}
	if total > 0 {
		for i, r := range c.residency {
			c.occupancy[i] += float64(r) / float64(total)
		}
	}
	c.steps++
}

// EvictionAges summarizes the lifetime (in steps) of evicted pages.
func (c *Collector) EvictionAges() (stats.Summary, error) {
	return stats.Summarize(c.ages)
}

// HitRate returns tenant i's hit rate in window w (0 when the tenant made
// no requests there).
func (c *Collector) HitRate(w int, i trace.Tenant) float64 {
	if w < 0 || w >= len(c.reqsPerWindow) || int(i) >= c.tenants {
		return 0
	}
	reqs := c.reqsPerWindow[w][i]
	if reqs == 0 {
		return 0
	}
	return float64(c.hitsPerWindow[w][i]) / float64(reqs)
}

// Windows returns the number of observed windows.
func (c *Collector) Windows() int { return len(c.reqsPerWindow) }

// AvgOccupancy returns each tenant's average share of the occupied cache.
func (c *Collector) AvgOccupancy() []float64 {
	out := make([]float64, c.tenants)
	if c.steps == 0 {
		return out
	}
	for i, o := range c.occupancy {
		out[i] = o / float64(c.steps)
	}
	return out
}
