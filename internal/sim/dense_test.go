package sim

import (
	"context"
	"testing"

	"convexcache/internal/trace"
)

// denseFIFO is fifoTest on the dense interface: the same FIFO semantics
// over dense page indices, used to cross-check the two engines.
type denseFIFO struct {
	fifoTest
	d     *trace.Dense
	queue []int32
}

func (f *denseFIFO) PrepareDense(d *trace.Dense, k int) bool {
	f.d = d
	f.queue = f.queue[:0]
	return true
}
func (f *denseFIFO) DenseHit(step int, page int32)    {}
func (f *denseFIFO) DenseInsert(step int, page int32) { f.queue = append(f.queue, page) }
func (f *denseFIFO) DenseVictim(step int, page int32) int32 {
	return f.queue[0]
}
func (f *denseFIFO) DenseEvict(step int, page int32) {
	for i, q := range f.queue {
		if q == page {
			f.queue = append(f.queue[:i], f.queue[i+1:]...)
			return
		}
	}
}

// decliningDense declines the dense path and must fall back to the map
// engine.
type decliningDense struct {
	denseFIFO
	declined bool
}

func (p *decliningDense) PrepareDense(d *trace.Dense, k int) bool {
	p.declined = true
	return false
}

// badDense returns a non-resident victim; the engine must fail the run.
type badDense struct{ denseFIFO }

func (b *badDense) DenseVictim(step int, page int32) int32 { return -1 }

func TestDenseEngineMatchesMapEngine(t *testing.T) {
	tr := seqTrace(t, 1, 101, 2, 1, 101, 3, 2, 1, 202, 3, 1, 101)
	for _, k := range []int{1, 2, 3, 5} {
		var mapEvents, denseEvents []Event
		mapRes, err := runMap(context.Background(), tr, &fifoTest{}, Config{K: k, Observer: func(ev Event) { mapEvents = append(mapEvents, ev) }})
		if err != nil {
			t.Fatal(err)
		}
		denseRes, err := Run(tr, &denseFIFO{}, Config{K: k, Observer: func(ev Event) { denseEvents = append(denseEvents, ev) }})
		if err != nil {
			t.Fatal(err)
		}
		if mapRes.Hits != denseRes.Hits || mapRes.Steps != denseRes.Steps || mapRes.EffectiveSteps != denseRes.EffectiveSteps {
			t.Fatalf("k=%d: results differ: map=%+v dense=%+v", k, mapRes, denseRes)
		}
		for i := range mapRes.Misses {
			if mapRes.Misses[i] != denseRes.Misses[i] || mapRes.Evictions[i] != denseRes.Evictions[i] {
				t.Fatalf("k=%d tenant %d: counters differ: map=%+v dense=%+v", k, i, mapRes, denseRes)
			}
		}
		if len(mapEvents) != len(denseEvents) {
			t.Fatalf("k=%d: event counts differ: %d vs %d", k, len(mapEvents), len(denseEvents))
		}
		for i := range mapEvents {
			// The policy names differ; everything else must match.
			if mapEvents[i] != denseEvents[i] {
				t.Fatalf("k=%d step %d: events differ: %+v vs %+v", k, i, mapEvents[i], denseEvents[i])
			}
		}
	}
}

func TestDenseEngineWarmup(t *testing.T) {
	tr := seqTrace(t, 1, 2, 1, 3)
	res, err := Run(tr, &denseFIFO{}, Config{K: 3, WarmupSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMisses() != 1 || res.Hits != 1 {
		t.Errorf("steady-state misses=%d hits=%d, want 1/1", res.TotalMisses(), res.Hits)
	}
	if res.EffectiveSteps != 2 {
		t.Errorf("EffectiveSteps = %d, want 2", res.EffectiveSteps)
	}
}

func TestDensePolicyDeclineFallsBack(t *testing.T) {
	tr := seqTrace(t, 1, 2, 1, 3, 1)
	p := &decliningDense{}
	res, err := Run(tr, p, Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !p.declined {
		t.Fatal("PrepareDense was not consulted")
	}
	// The map fallback drove the sparse fifoTest methods.
	if res.Hits != 1 || res.TotalMisses() != 4 {
		t.Errorf("fallback run: hits=%d misses=%d, want 1/4", res.Hits, res.TotalMisses())
	}
}

func TestDenseEngineRejectsBadVictim(t *testing.T) {
	tr := seqTrace(t, 1, 2, 3)
	if _, err := Run(tr, &badDense{}, Config{K: 1}); err == nil {
		t.Fatal("non-resident dense victim accepted")
	}
}

// TestDenseEngineZeroAllocSteadyState is the tentpole's allocation budget:
// once the run's slices exist, the request loop must not allocate. The
// engine and policy state are prepared by a first run; the second run over
// the same trace reuses them, so its steady-state allocations per request
// must be (amortized) zero.
func TestDenseEngineZeroAllocSteadyState(t *testing.T) {
	b := trace.NewBuilder()
	for i := 0; i < 5000; i++ {
		b.Add(trace.Tenant(i%3), trace.PageID((i%3)*1000+i*7%97))
	}
	tr := b.MustBuild()
	tr.Dense() // densify outside the measured region
	p := &denseFIFO{}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := Run(tr, p, Config{K: 32}); err != nil {
			t.Fatal(err)
		}
	})
	// A full 5000-request run may allocate a fixed handful of setup slices
	// (result counters, slot table); the loop itself must not. Amortized
	// over 5000 requests anything per-step would exceed this bound by 100x.
	if allocs > 20 {
		t.Errorf("allocations per run = %g, want <= 20 (setup only)", allocs)
	}
}
