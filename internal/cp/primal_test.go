package cp

import (
	"testing"

	"convexcache/internal/costfn"
	"convexcache/internal/offline"
)

func TestSolvePrimalFeasibleAndBracketed(t *testing.T) {
	costs := []costfn.Func{costfn.Monomial{C: 1, Beta: 2}, costfn.Linear{W: 2}}
	for seed := int64(0); seed < 5; seed++ {
		tr := randomTrace(60+seed, 2, 4, 18)
		k := 2
		in, err := Build(tr, k, costs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := in.SolvePrimal(0, 0) // defaults
		if err != nil {
			t.Fatal(err)
		}
		if err := in.CheckFeasible(res.X, 1e-9); err != nil {
			t.Fatalf("seed=%d: primal point infeasible: %v", seed, err)
		}
		opt, err := offline.Exact(tr, k, costs, offline.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		dual := in.SolveDual(300, opt.Cost/float64(in.NumRows()+1))
		// Feasible value upper-bounds the CP optimum, which the dual
		// lower-bounds.
		if res.Objective < dual.Best-1e-6 {
			t.Errorf("seed=%d: primal %g below dual bound %g", seed, res.Objective, dual.Best)
		}
		// The CP optimum is at most the integer optimum; the approximate
		// primal should land near it (within 30% above on these tiny
		// instances).
		if res.Objective > opt.Cost*1.3+1e-6 {
			t.Errorf("seed=%d: primal %g far above integer OPT %g", seed, res.Objective, opt.Cost)
		}
	}
}

func TestSolvePrimalMatchesSimplexOnLinear(t *testing.T) {
	costs := []costfn.Func{costfn.Linear{W: 1}, costfn.Linear{W: 3}}
	for seed := int64(0); seed < 4; seed++ {
		tr := randomTrace(80+seed, 2, 4, 16)
		in, err := Build(tr, 2, costs)
		if err != nil {
			t.Fatal(err)
		}
		_, lpVal, err := in.SolveLinearExact()
		if err != nil {
			t.Fatal(err)
		}
		res, err := in.SolvePrimal(8, 400)
		if err != nil {
			t.Fatal(err)
		}
		if res.Objective < lpVal-1e-6 {
			t.Fatalf("seed=%d: primal %g below exact LP optimum %g", seed, res.Objective, lpVal)
		}
		if lpVal > 0 && res.Objective > lpVal*1.2 {
			t.Errorf("seed=%d: primal %g more than 20%% above LP optimum %g", seed, res.Objective, lpVal)
		}
	}
}

func TestSolvePrimalNoVariables(t *testing.T) {
	in := &Instance{}
	if _, err := in.SolvePrimal(1, 1); err == nil {
		t.Error("empty instance accepted")
	}
}
