package cp

import (
	"errors"

	"convexcache/internal/costfn"
	"convexcache/internal/lp"
)

// SolveLinearExact solves the convex program exactly with the simplex
// method when every tenant's cost function is linear (f_i(x) = w_i x) —
// the weighted-caching LP of Young (1994) / Bansal-Buchbinder-Naor (2012).
// It returns the optimal fractional eviction schedule and its objective,
// which certifies the exact fractional optimum sandwiched between the
// subgradient dual bound and the integer optimum:
//
//	SolveDual(...).Best <= LP optimum <= offline.Exact(...).Cost.
//
// It errors when a cost function is not Linear.
func (in *Instance) SolveLinearExact() ([]float64, float64, error) {
	c := make([]float64, len(in.vars))
	for v, vi := range in.vars {
		f := in.costOf(int(vi.Tenant))
		lin, ok := f.(costfn.Linear)
		if !ok {
			return nil, 0, errors.New("cp: SolveLinearExact requires linear cost functions")
		}
		c[v] = lin.W
	}
	prob := lp.Problem{C: c}
	// Covering rows.
	for _, rw := range in.rows {
		coef := make([]float64, len(in.vars))
		for _, v := range rw.cols {
			coef[v] = 1
		}
		prob.Rows = append(prob.Rows, lp.Constraint{Coef: coef, Rel: lp.GE, RHS: rw.rhs})
	}
	// Box: x <= 1.
	for v := range in.vars {
		coef := make([]float64, v+1)
		coef[v] = 1
		prob.Rows = append(prob.Rows, lp.Constraint{Coef: coef, Rel: lp.LE, RHS: 1})
	}
	sol, err := lp.Solve(prob)
	if err != nil {
		return nil, 0, err
	}
	if sol.Status != lp.Optimal {
		return nil, 0, errors.New("cp: weighted caching LP reported " + sol.Status.String())
	}
	return sol.X, sol.Objective, nil
}
