package cp

import (
	"errors"
	"math"
)

// PrimalResult is the outcome of the penalty-method primal solve.
type PrimalResult struct {
	// X is the feasible (post-repair) fractional schedule.
	X []float64
	// Objective is the convex objective at X — an upper bound on the CP
	// optimum because X is feasible.
	Objective float64
	// Iterations counts gradient steps across all penalty rounds.
	Iterations int
	// MaxViolation is the largest constraint violation before repair
	// (diagnostic; X itself is feasible).
	MaxViolation float64
}

// SolvePrimal approximately minimizes the convex program with a quadratic
// penalty method (projected gradient descent on the box, penalty weight
// escalated geometrically), then repairs any residual violation by greedily
// raising the cheapest variables of each uncovered row. The returned point
// is exactly feasible, so its objective certifies an upper bound on the CP
// optimum; combined with SolveDual's lower bound this brackets the
// fractional optimum for arbitrary convex costs (SolveLinearExact covers
// the linear case exactly).
func (in *Instance) SolvePrimal(rounds, stepsPerRound int) (PrimalResult, error) {
	if rounds <= 0 {
		rounds = 6
	}
	if stepsPerRound <= 0 {
		stepsPerRound = 200
	}
	n := len(in.vars)
	if n == 0 {
		return PrimalResult{}, errors.New("cp: no variables")
	}
	x := make([]float64, n)
	// Start from the all-evicted point, which is feasible.
	for v := range x {
		x[v] = 1
	}
	grad := make([]float64, n)
	rho := 1.0
	res := PrimalResult{}
	for round := 0; round < rounds; round++ {
		step := 0.5 / rho
		for it := 0; it < stepsPerRound; it++ {
			in.penaltyGradient(x, rho, grad)
			moved := 0.0
			for v := range x {
				nx := x[v] - step*grad[v]
				if nx < 0 {
					nx = 0
				}
				if nx > 1 {
					nx = 1
				}
				moved += math.Abs(nx - x[v])
				x[v] = nx
			}
			res.Iterations++
			if moved < 1e-10 {
				break
			}
		}
		rho *= 4
	}
	res.MaxViolation = in.maxViolation(x)
	in.repair(x)
	if err := in.CheckFeasible(x, 1e-9); err != nil {
		return PrimalResult{}, err
	}
	res.X = x
	res.Objective = in.Objective(x)
	return res, nil
}

// penaltyGradient computes the gradient of
// F(x) = sum_i f_i(S_i) + rho * sum_r max(0, rhs - sum x)^2.
func (in *Instance) penaltyGradient(x []float64, rho float64, grad []float64) {
	// Objective part: df/dx_v = f'_{tenant}(S_tenant).
	for i, vars := range in.tenantVars {
		s := 0.0
		for _, v := range vars {
			s += x[v]
		}
		d := in.costOf(i).Deriv(s)
		for _, v := range vars {
			grad[v] = d
		}
	}
	// Penalty part.
	for _, rw := range in.rows {
		s := 0.0
		for _, v := range rw.cols {
			s += x[v]
		}
		if viol := rw.rhs - s; viol > 0 {
			g := -2 * rho * viol
			for _, v := range rw.cols {
				grad[v] += g
			}
		}
	}
}

// maxViolation returns the largest covering-constraint violation.
func (in *Instance) maxViolation(x []float64) float64 {
	worst := 0.0
	for _, rw := range in.rows {
		s := 0.0
		for _, v := range rw.cols {
			s += x[v]
		}
		if viol := rw.rhs - s; viol > worst {
			worst = viol
		}
	}
	return worst
}

// repair raises variables with the smallest marginal cost until every row
// is covered. Rows are processed in order; raising a variable helps every
// row containing it, so later rows are rechecked implicitly via their own
// pass.
func (in *Instance) repair(x []float64) {
	for ri := range in.rows {
		rw := &in.rows[ri]
		s := 0.0
		for _, v := range rw.cols {
			s += x[v]
		}
		for s < rw.rhs-1e-12 {
			// Cheapest headroom variable by current marginal cost.
			best, bestCost := -1, math.Inf(1)
			for _, v := range rw.cols {
				if x[v] >= 1 {
					continue
				}
				i := int(in.vars[v].Tenant)
				si := 0.0
				for _, u := range in.tenantVars[i] {
					si += x[u]
				}
				c := in.costOf(i).Deriv(si)
				if c < bestCost {
					best, bestCost = v, c
				}
			}
			if best < 0 {
				return // row cannot be covered further (should not happen)
			}
			need := rw.rhs - s
			add := 1 - x[best]
			if add > need {
				add = need
			}
			x[best] += add
			s += add
		}
	}
}
