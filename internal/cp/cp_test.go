package cp

import (
	"math"
	"math/rand"
	"testing"

	"convexcache/internal/costfn"
	"convexcache/internal/offline"
	"convexcache/internal/policy"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

func randomTrace(seed int64, tenants, pagesPer, length int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	b := trace.NewBuilder()
	for i := 0; i < length; i++ {
		tn := rng.Intn(tenants)
		b.Add(trace.Tenant(tn), trace.PageID(tn*100+rng.Intn(pagesPer)))
	}
	return b.MustBuild()
}

func TestBuildStructure(t *testing.T) {
	// Sequence (tenant 0): 1 2 3 1 with k=2.
	b := trace.NewBuilder().Add(0, 1).Add(0, 2).Add(0, 3).Add(0, 1)
	tr := b.MustBuild()
	in, err := Build(tr, 2, []costfn.Func{costfn.Linear{W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// One variable per request.
	if in.NumVars() != 4 {
		t.Errorf("NumVars = %d, want 4", in.NumVars())
	}
	// Constraints appear once |B(t)| > k: steps 2 (seen=3) and 3 (seen=3).
	if in.NumRows() != 2 {
		t.Errorf("NumRows = %d, want 2", in.NumRows())
	}
	// Step 2 row: pages {1,2} (not p_t=3), rhs 1.
	// Step 3 row: pages {2,3} in their current intervals (not p_t=1).
	if _, ok := in.VarOf(1, 0); !ok {
		t.Error("missing variable x(1,0)")
	}
	if _, ok := in.VarOf(1, 1); !ok {
		t.Error("missing variable x(1,1)")
	}
	if _, ok := in.VarOf(1, 2); ok {
		t.Error("unexpected variable x(1,2)")
	}
}

func TestBuildRejectsBadK(t *testing.T) {
	tr := trace.NewBuilder().Add(0, 1).MustBuild()
	if _, err := Build(tr, 0, nil); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestAnyRunYieldsFeasibleSchedule(t *testing.T) {
	costs := []costfn.Func{costfn.Monomial{C: 1, Beta: 2}, costfn.Linear{W: 2}}
	for seed := int64(0); seed < 5; seed++ {
		tr := randomTrace(seed, 2, 5, 60)
		k := 3
		in, err := Build(tr, k, costs)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []sim.Policy{policy.NewLRU(), policy.NewFIFO(), policy.NewBelady()} {
			var evs []Eviction
			res, err := sim.Run(tr, p, sim.Config{K: k, Observer: func(ev sim.Event) {
				if ev.Evicted >= 0 {
					evs = append(evs, Eviction{Step: ev.Step, Page: ev.Evicted})
				}
			}})
			if err != nil {
				t.Fatal(err)
			}
			x, err := in.ScheduleFromEvictions(tr, evs)
			if err != nil {
				t.Fatalf("%s: %v", p.Name(), err)
			}
			if err := in.CheckFeasible(x, 1e-9); err != nil {
				t.Errorf("seed=%d %s: infeasible run schedule: %v", seed, p.Name(), err)
			}
			// The CP objective of the run schedule equals the eviction
			// cost of the run.
			if got, want := in.Objective(x), res.EvictionCost(costs); math.Abs(got-want) > 1e-9 {
				t.Errorf("seed=%d %s: objective %g != eviction cost %g", seed, p.Name(), got, want)
			}
		}
	}
}

func TestDualValueAtZeroIsZero(t *testing.T) {
	tr := randomTrace(1, 2, 4, 30)
	in, err := Build(tr, 2, []costfn.Func{costfn.Linear{W: 1}, costfn.Linear{W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	val, g, x := in.DualValue(make([]float64, in.NumRows()))
	if val != 0 {
		t.Errorf("dual at 0 = %g", val)
	}
	for _, xv := range x {
		if xv != 0 {
			t.Errorf("inner minimizer non-zero at y=0")
			break
		}
	}
	// Subgradient at 0 equals the rhs vector (all constraints violated by
	// x=0 exactly by rhs).
	for ri, gv := range g {
		if gv <= 0 {
			t.Errorf("subgradient %d = %g, want positive rhs", ri, gv)
		}
	}
}

func TestWeakDuality(t *testing.T) {
	// For random multipliers, the dual value never exceeds the exact
	// optimum (which is an upper bound on the CP optimum).
	costs := []costfn.Func{costfn.Monomial{C: 1, Beta: 2}, costfn.Linear{W: 3}}
	rng := rand.New(rand.NewSource(5))
	for seed := int64(0); seed < 5; seed++ {
		tr := randomTrace(10+seed, 2, 4, 16)
		k := 2
		in, err := Build(tr, k, costs)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := offline.Exact(tr, k, costs, offline.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			y := make([]float64, in.NumRows())
			for i := range y {
				y[i] = rng.Float64() * 3
			}
			val, _, _ := in.DualValue(y)
			if val > opt.Cost+1e-6 {
				t.Fatalf("seed=%d trial=%d: dual %g exceeds OPT %g", seed, trial, val, opt.Cost)
			}
		}
	}
}

func TestInnerMinimizationExact(t *testing.T) {
	// Compare the greedy water-filling against a grid search on a tiny
	// tenant with three variables.
	fs := []costfn.Func{
		costfn.Linear{W: 2},
		costfn.Monomial{C: 1, Beta: 2},
		costfn.Monomial{C: 0.5, Beta: 3},
	}
	rng := rand.New(rand.NewSource(9))
	for _, f := range fs {
		in := &Instance{costs: []costfn.Func{f}, tenantVars: [][]int{{0, 1, 2}}}
		in.vars = make([]VarInfo, 3)
		for trial := 0; trial < 30; trial++ {
			c := []float64{rng.Float64() * 4, rng.Float64() * 4, rng.Float64() * 4}
			x := make([]float64, 3)
			got := in.minimizeTenant(0, []int{0, 1, 2}, c, x)
			// Grid search with step 1/50.
			best := math.Inf(1)
			const steps = 50
			for a := 0; a <= steps; a++ {
				for bg := 0; bg <= steps; bg++ {
					for cg := 0; cg <= steps; cg++ {
						xa, xb, xc := float64(a)/steps, float64(bg)/steps, float64(cg)/steps
						v := f.Value(xa+xb+xc) - c[0]*xa - c[1]*xb - c[2]*xc
						if v < best {
							best = v
						}
					}
				}
			}
			if got > best+1e-2 {
				t.Fatalf("%s c=%v: greedy %g worse than grid %g", f, c, got, best)
			}
		}
	}
}

func TestSolveDualProducesCertifiedBound(t *testing.T) {
	costs := []costfn.Func{costfn.Monomial{C: 1, Beta: 2}, costfn.Linear{W: 2}}
	for seed := int64(0); seed < 4; seed++ {
		tr := randomTrace(30+seed, 2, 4, 18)
		k := 2
		in, err := Build(tr, k, costs)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := offline.Exact(tr, k, costs, offline.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		res := in.SolveDual(300, opt.Cost/float64(in.NumRows()+1))
		if res.Best > opt.Cost+1e-6 {
			t.Fatalf("seed=%d: dual bound %g exceeds OPT %g", seed, res.Best, opt.Cost)
		}
		if res.Best <= 0 {
			t.Errorf("seed=%d: dual bound %g not positive despite forced evictions", seed, res.Best)
		}
		// The bound should carry real information: at least a quarter of
		// OPT on these tiny instances.
		if res.Best < opt.Cost/4 {
			t.Errorf("seed=%d: dual bound %g too loose vs OPT %g", seed, res.Best, opt.Cost)
		}
		// History is monotone non-decreasing.
		for i := 1; i < len(res.History); i++ {
			if res.History[i] < res.History[i-1] {
				t.Fatalf("seed=%d: best-history decreased at %d", seed, i)
			}
		}
	}
}

func TestSolveDualNoConstraints(t *testing.T) {
	// Trace fits in cache: no rows, dual = 0 = OPT beyond cold misses'
	// eviction count 0.
	tr := trace.NewBuilder().Add(0, 1).Add(0, 2).Add(0, 1).MustBuild()
	in, err := Build(tr, 4, []costfn.Func{costfn.Linear{W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if in.NumRows() != 0 {
		t.Fatalf("rows = %d, want 0", in.NumRows())
	}
	res := in.SolveDual(10, 1)
	if res.Best != 0 {
		t.Errorf("dual = %g, want 0", res.Best)
	}
}

func TestScheduleFromEvictionsRejectsUnknownVariable(t *testing.T) {
	tr := trace.NewBuilder().Add(0, 1).Add(0, 2).MustBuild()
	in, err := Build(tr, 1, []costfn.Func{costfn.Linear{W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Page 99 never appears in the trace.
	if _, err := in.ScheduleFromEvictions(tr, []Eviction{{Step: 1, Page: 99}}); err == nil {
		t.Error("unknown eviction accepted")
	}
}

func TestCheckFeasibleDetectsViolations(t *testing.T) {
	b := trace.NewBuilder().Add(0, 1).Add(0, 2).Add(0, 3)
	tr := b.MustBuild()
	in, err := Build(tr, 2, []costfn.Func{costfn.Linear{W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	zero := make([]float64, in.NumVars())
	if err := in.CheckFeasible(zero, 1e-9); err == nil {
		t.Error("all-zero schedule accepted despite covering constraint")
	}
	if err := in.CheckFeasible(make([]float64, 1), 1e-9); err == nil {
		t.Error("wrong-length schedule accepted")
	}
	bad := make([]float64, in.NumVars())
	bad[0] = 2
	if err := in.CheckFeasible(bad, 1e-9); err == nil {
		t.Error("x > 1 accepted")
	}
}
