package cp

import (
	"math"
	"testing"

	"convexcache/internal/costfn"
	"convexcache/internal/offline"
	"convexcache/internal/trace"
)

func TestSolveLinearExactSandwich(t *testing.T) {
	costs := []costfn.Func{costfn.Linear{W: 1}, costfn.Linear{W: 3}}
	for seed := int64(0); seed < 6; seed++ {
		tr := randomTrace(40+seed, 2, 4, 18)
		k := 2
		in, err := Build(tr, k, costs)
		if err != nil {
			t.Fatal(err)
		}
		x, lpVal, err := in.SolveLinearExact()
		if err != nil {
			t.Fatal(err)
		}
		// The LP solution must be feasible for the CP and achieve its
		// reported objective.
		if err := in.CheckFeasible(x, 1e-6); err != nil {
			t.Fatalf("seed=%d: LP solution infeasible: %v", seed, err)
		}
		if got := in.Objective(x); math.Abs(got-lpVal) > 1e-6*(1+math.Abs(lpVal)) {
			t.Fatalf("seed=%d: objective mismatch %g vs %g", seed, got, lpVal)
		}
		opt, err := offline.Exact(tr, k, costs, offline.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if lpVal > opt.Cost+1e-6 {
			t.Errorf("seed=%d: LP %g above integer OPT %g", seed, lpVal, opt.Cost)
		}
		dual := in.SolveDual(400, opt.Cost/float64(in.NumRows()+1))
		if dual.Best > lpVal+1e-5*(1+lpVal) {
			t.Errorf("seed=%d: dual %g above LP optimum %g", seed, dual.Best, lpVal)
		}
		// With enough iterations the dual should get close to the LP value
		// (they share the same optimum by strong duality).
		if lpVal > 0 && dual.Best < 0.5*lpVal {
			t.Errorf("seed=%d: dual %g far below LP %g", seed, dual.Best, lpVal)
		}
	}
}

func TestSolveLinearExactRejectsConvexCosts(t *testing.T) {
	tr := trace.NewBuilder().Add(0, 1).Add(0, 2).Add(0, 3).MustBuild()
	in, err := Build(tr, 2, []costfn.Func{costfn.Monomial{C: 1, Beta: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := in.SolveLinearExact(); err == nil {
		t.Error("non-linear costs accepted")
	}
}

func TestSolveLinearExactNoConstraints(t *testing.T) {
	tr := trace.NewBuilder().Add(0, 1).Add(0, 2).MustBuild()
	in, err := Build(tr, 4, []costfn.Func{costfn.Linear{W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	_, val, err := in.SolveLinearExact()
	if err != nil {
		t.Fatal(err)
	}
	if val != 0 {
		t.Errorf("LP value = %g, want 0 (everything fits)", val)
	}
}
