package cp

import (
	"testing"

	"convexcache/internal/costfn"
	"convexcache/internal/offline"
)

// TestOptimalScheduleIsCPFeasible closes the loop between the offline
// solver and the convex program: the exact optimum's eviction schedule must
// satisfy every covering constraint of Figure 1, and its CP objective
// (eviction accounting) must lower-bound the miss-accounting optimum.
func TestOptimalScheduleIsCPFeasible(t *testing.T) {
	costs := []costfn.Func{costfn.Monomial{C: 1, Beta: 2}, costfn.Linear{W: 3}}
	for seed := int64(0); seed < 6; seed++ {
		tr := randomTrace(90+seed, 2, 4, 20)
		k := 2
		res, err := offline.Exact(tr, k, costs, offline.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		in, err := Build(tr, k, costs)
		if err != nil {
			t.Fatal(err)
		}
		evs := make([]Eviction, len(res.Schedule))
		for i, e := range res.Schedule {
			evs[i] = Eviction{Step: e.Step, Page: e.Page}
		}
		x, err := in.ScheduleFromEvictions(tr, evs)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if err := in.CheckFeasible(x, 1e-9); err != nil {
			t.Fatalf("seed=%d: optimal schedule infeasible for the CP: %v", seed, err)
		}
		if obj := in.Objective(x); obj > res.Cost+1e-9 {
			t.Errorf("seed=%d: eviction-accounting objective %g above miss-accounting OPT %g", seed, obj, res.Cost)
		}
	}
}
