// Package cp implements the convex programming relaxation (CP) of Figure 1
// of the paper and its Lagrangian dual.
//
// Variables x(p,j) in [0,1] indicate eviction of page p between its j-th and
// (j+1)-th request; for each time t with more distinct pages seen than the
// cache holds there is a covering constraint
//
//	sum_{p in B(t) \ {p_t}} x(p, j(p,t)) >= |B(t)| - k.
//
// The objective is sum_i f_i(sum of tenant i's variables). The key property
// used here: for fixed multipliers y >= 0 the inner Lagrangian minimization
// over the box decomposes per tenant and is solvable exactly by a greedy
// water-filling (sort coefficients descending, add variable mass while the
// coefficient exceeds the running marginal f_i'). Projected subgradient
// ascent on y therefore produces certified lower bounds on the CP optimum,
// hence on the integer optimum OPT — the quantity experiment E7 tracks.
package cp

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"convexcache/internal/costfn"
	"convexcache/internal/trace"
)

// Instance is a materialized convex program for one (trace, k) pair.
type Instance struct {
	k     int
	costs []costfn.Func

	// vars[v] identifies variable v.
	vars []VarInfo
	// varIndex maps (page, interval) to the flat variable index.
	varIndex map[varKey]int
	// rows[r] is the covering constraint of one time step.
	rows []row
	// varRows[v] lists the rows containing variable v.
	varRows [][]int
	// tenantVars[i] lists the variables of tenant i.
	tenantVars [][]int
}

// VarInfo describes one eviction variable x(p, j).
type VarInfo struct {
	// Page is p.
	Page trace.PageID
	// Interval is the 0-based j.
	Interval int
	// Tenant owns the page.
	Tenant trace.Tenant
}

type varKey struct {
	page trace.PageID
	j    int
}

type row struct {
	step int
	cols []int
	rhs  float64
}

// Build constructs the convex program for the trace and cache size k.
func Build(tr *trace.Trace, k int, costs []costfn.Func) (*Instance, error) {
	if k <= 0 {
		return nil, errors.New("cp: cache size must be positive")
	}
	in := &Instance{
		k:          k,
		costs:      append([]costfn.Func(nil), costs...),
		varIndex:   make(map[varKey]int),
		tenantVars: make([][]int, tr.NumTenants()),
	}
	// One variable per (page, request occurrence).
	reqCount := make(map[trace.PageID]int)
	getVar := func(p trace.PageID, j int, owner trace.Tenant) int {
		key := varKey{page: p, j: j}
		if v, ok := in.varIndex[key]; ok {
			return v
		}
		v := len(in.vars)
		in.vars = append(in.vars, VarInfo{Page: p, Interval: j, Tenant: owner})
		in.varIndex[key] = v
		in.varRows = append(in.varRows, nil)
		in.tenantVars[owner] = append(in.tenantVars[owner], v)
		return v
	}
	seen := 0
	for step, r := range tr.Requests() {
		if reqCount[r.Page] == 0 {
			seen++
		}
		reqCount[r.Page]++
		getVar(r.Page, reqCount[r.Page]-1, r.Tenant)
		rhs := float64(seen - k)
		if rhs <= 0 {
			continue
		}
		cols := make([]int, 0, seen-1)
		for p, cnt := range reqCount {
			if p == r.Page {
				continue
			}
			owner, _ := tr.Owner(p)
			cols = append(cols, getVar(p, cnt-1, owner))
		}
		ri := len(in.rows)
		in.rows = append(in.rows, row{step: step, cols: cols, rhs: rhs})
		for _, v := range cols {
			in.varRows[v] = append(in.varRows[v], ri)
		}
	}
	return in, nil
}

// NumVars returns the number of eviction variables.
func (in *Instance) NumVars() int { return len(in.vars) }

// NumRows returns the number of covering constraints.
func (in *Instance) NumRows() int { return len(in.rows) }

// Var returns the description of variable v.
func (in *Instance) Var(v int) VarInfo { return in.vars[v] }

// VarOf returns the flat index of x(p, j), if it exists.
func (in *Instance) VarOf(p trace.PageID, j int) (int, bool) {
	v, ok := in.varIndex[varKey{page: p, j: j}]
	return v, ok
}

func (in *Instance) costOf(i int) costfn.Func {
	if i < len(in.costs) && in.costs[i] != nil {
		return in.costs[i]
	}
	return costfn.Linear{W: 1}
}

// Objective evaluates sum_i f_i(sum of tenant i's x).
func (in *Instance) Objective(x []float64) float64 {
	total := 0.0
	for i, vars := range in.tenantVars {
		s := 0.0
		for _, v := range vars {
			s += x[v]
		}
		total += in.costOf(i).Value(s)
	}
	return total
}

// CheckFeasible verifies 0 <= x <= 1 and every covering constraint, with
// tolerance tol. It returns the first violation found.
func (in *Instance) CheckFeasible(x []float64, tol float64) error {
	if len(x) != len(in.vars) {
		return fmt.Errorf("cp: schedule has %d entries, want %d", len(x), len(in.vars))
	}
	for v, xv := range x {
		if xv < -tol || xv > 1+tol {
			vi := in.vars[v]
			return fmt.Errorf("cp: x(%d,%d) = %g outside [0,1]", vi.Page, vi.Interval, xv)
		}
	}
	for ri, rw := range in.rows {
		s := 0.0
		for _, v := range rw.cols {
			s += x[v]
		}
		if s < rw.rhs-tol {
			return fmt.Errorf("cp: constraint %d (step %d): %g < rhs %g", ri, rw.step, s, rw.rhs)
		}
	}
	return nil
}

// DualValue evaluates the Lagrangian dual function at multipliers y >= 0
// exactly, returning the dual value, a subgradient (one entry per row), and
// the inner minimizer x.
//
// g(y) = min_{x in [0,1]^N} sum_i f_i(S_i) - sum_v c_v x_v + sum_r y_r rhs_r,
// with c_v = sum of y over the rows containing v. Per tenant, the inner
// minimum is attained by adding mass to variables in descending coefficient
// order while the coefficient exceeds the running marginal f_i'.
func (in *Instance) DualValue(y []float64) (float64, []float64, []float64) {
	if len(y) != len(in.rows) {
		panic(fmt.Sprintf("cp: got %d multipliers, want %d", len(y), len(in.rows)))
	}
	c := make([]float64, len(in.vars))
	for ri, yr := range y {
		if yr == 0 {
			continue
		}
		for _, v := range in.rows[ri].cols {
			c[v] += yr
		}
	}
	x := make([]float64, len(in.vars))
	val := 0.0
	for i, vars := range in.tenantVars {
		val += in.minimizeTenant(i, vars, c, x)
	}
	for ri, yr := range y {
		val += yr * in.rows[ri].rhs
	}
	// Subgradient: rhs_r - sum_{v in row} x_v.
	g := make([]float64, len(in.rows))
	for ri, rw := range in.rows {
		s := 0.0
		for _, v := range rw.cols {
			s += x[v]
		}
		g[ri] = rw.rhs - s
	}
	return val, g, x
}

// minimizeTenant solves min over the tenant's box of f_i(S) - c.x exactly,
// writing the minimizer into x and returning the attained value.
func (in *Instance) minimizeTenant(i int, vars []int, c, x []float64) float64 {
	f := in.costOf(i)
	order := append([]int(nil), vars...)
	sort.Slice(order, func(a, b int) bool { return c[order[a]] > c[order[b]] })
	s := 0.0
	linear := 0.0
	for _, v := range order {
		cv := c[v]
		if cv <= 0 {
			break
		}
		if f.Deriv(s+1) <= cv {
			// Profitable across the whole unit: take x_v = 1.
			x[v] = 1
			s++
			linear += cv
			continue
		}
		if f.Deriv(s) >= cv {
			// Not profitable at all; later coefficients are smaller.
			break
		}
		// Fractional fill: find a in (0,1) with f'(s+a) = cv.
		a := solveFrac(f, s, cv)
		x[v] = a
		linear += cv * a
		s += a
		break
	}
	return f.Value(s) - linear
}

// solveFrac binary-searches a in [0,1] with f'(s+a) = c (f' increasing).
func solveFrac(f costfn.Func, s, c float64) float64 {
	lo, hi := 0.0, 1.0
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if f.Deriv(s+mid) < c {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// DualResult summarizes a subgradient ascent run.
type DualResult struct {
	// Best is the best (largest) certified dual value found: a lower bound
	// on the CP optimum and hence on OPT.
	Best float64
	// Y is the multiplier vector attaining Best.
	Y []float64
	// Iters is the number of ascent iterations performed.
	Iters int
	// History records the best value after each iteration.
	History []float64
}

// SolveDual runs projected subgradient ascent for the given number of
// iterations with initial step size step0 (a reasonable default is the
// average cost magnitude divided by the row count; step0 <= 0 selects 1).
func (in *Instance) SolveDual(iters int, step0 float64) DualResult {
	if step0 <= 0 {
		step0 = 1
	}
	y := make([]float64, len(in.rows))
	res := DualResult{Best: math.Inf(-1)}
	if len(in.rows) == 0 {
		// No constraints: x = 0 is optimal, dual value 0.
		res.Best = 0
		res.Y = y
		return res
	}
	for it := 0; it < iters; it++ {
		val, g, _ := in.DualValue(y)
		if val > res.Best {
			res.Best = val
			res.Y = append(res.Y[:0], y...)
		}
		res.History = append(res.History, res.Best)
		norm := 0.0
		for _, gv := range g {
			norm += gv * gv
		}
		if norm == 0 {
			break
		}
		step := step0 / (math.Sqrt(norm) * math.Sqrt(float64(it+1)))
		for ri := range y {
			y[ri] += step * g[ri]
			if y[ri] < 0 {
				y[ri] = 0
			}
		}
		res.Iters = it + 1
	}
	if math.IsInf(res.Best, -1) {
		res.Best = 0
		res.Y = y
	}
	return res
}

// ScheduleFromEvictions converts an eviction log (page evicted at step) into
// the 0/1 schedule x implied by a run on the same trace: x(p, j(p,t)) = 1
// when p was evicted at step t during its interval j(p,t).
func (in *Instance) ScheduleFromEvictions(tr *trace.Trace, evictions []Eviction) ([]float64, error) {
	x := make([]float64, len(in.vars))
	reqCount := make(map[trace.PageID]int)
	evByStep := make(map[int]trace.PageID, len(evictions))
	for _, e := range evictions {
		evByStep[e.Step] = e.Page
	}
	for step, r := range tr.Requests() {
		reqCount[r.Page]++
		if p, ok := evByStep[step]; ok {
			j := reqCount[p] - 1
			v, exists := in.VarOf(p, j)
			if !exists {
				return nil, fmt.Errorf("cp: eviction of page %d at step %d has no variable (interval %d)", p, step, j)
			}
			x[v] = 1
		}
	}
	return x, nil
}

// Eviction is one entry of an eviction log.
type Eviction struct {
	// Step is the 0-based request index at which the eviction happened.
	Step int
	// Page is the evicted page.
	Page trace.PageID
}
