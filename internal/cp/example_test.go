package cp_test

import (
	"fmt"

	"convexcache/internal/costfn"
	"convexcache/internal/cp"
	"convexcache/internal/trace"
)

// ExampleInstance_SolveDual certifies a lower bound on the offline optimum
// from the Figure-1 relaxation.
func ExampleInstance_SolveDual() {
	// Three pages cycling through a 2-page cache: OPT must evict.
	tr := trace.NewBuilder().
		Add(0, 1).Add(0, 2).Add(0, 3).Add(0, 1).Add(0, 2).Add(0, 3).
		MustBuild()
	in, _ := cp.Build(tr, 2, []costfn.Func{costfn.Linear{W: 1}})
	res := in.SolveDual(200, 1)
	fmt.Printf("certified lower bound > 0: %v\n", res.Best > 0)

	// With linear costs the simplex solves the same program exactly.
	_, lpVal, _ := in.SolveLinearExact()
	fmt.Printf("dual <= LP optimum: %v\n", res.Best <= lpVal+1e-6)
	// Output:
	// certified lower bound > 0: true
	// dual <= LP optimum: true
}
