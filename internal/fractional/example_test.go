package fractional_test

import (
	"fmt"

	"convexcache/internal/fractional"
	"convexcache/internal/trace"
)

// Example runs the fractional primal-dual cache on a tiny cycle: requests
// pay only for the evicted fraction, unlike an integral cache that pays
// full misses.
func Example() {
	c, _ := fractional.New(fractional.Options{K: 2, Weights: []float64{1}})
	pages := []trace.PageID{1, 2, 3, 1, 2, 3}
	total := 0.0
	for _, p := range pages {
		total += c.Serve(trace.Request{Page: p, Tenant: 0})
	}
	// An integral cache of size 2 misses all 6 requests on this cycle.
	fmt.Printf("fractional cost below integral 6: %v\n", total < 6)
	fmt.Printf("cache mass within capacity: %v\n", c.InCacheMass() <= 2+1e-9)
	// Output:
	// fractional cost below integral 6: true
	// cache mass within capacity: true
}
