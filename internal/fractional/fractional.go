// Package fractional implements the primal-dual *fractional* caching
// algorithm in the style of Bansal, Buchbinder and Naor (J.ACM 2012), the
// randomized-weighted-caching lineage the paper builds its convex program
// on (its LP is the one of [3]).
//
// State: every seen page p carries an eviction fraction y(p) in [0,1]
// (y = 1 fully evicted). A request for p pays w(p) * y(p) to re-fetch the
// missing fraction and resets y(p) = 0; while the fractional cache
// overflows (sum of (1-y) over seen pages exceeds k), all other pages'
// fractions grow multiplicatively,
//
//	dy(q) ∝ (y(q) + 1/k) / w(q),
//
// which yields the classical O(log k) fractional competitiveness for
// weighted paging — contrast with the Theta(k) deterministic bound the
// paper's algorithm meets. Experiment E14 measures exactly this gap on the
// Theorem 1.4 adversary.
//
// Two weight modes are supported: static per-tenant weights (the [3]
// setting, f_i(x) = w_i x) and dynamic marginal weights w_i =
// f_i'(m_i + 1) driven by the accumulated fractional miss mass — the
// natural fractional extension of the paper's convex-cost setting
// (heuristic; no guarantee is claimed for it here).
package fractional

import (
	"errors"
	"fmt"
	"math"

	"convexcache/internal/costfn"
	"convexcache/internal/trace"
)

// Options configures the fractional simulator.
type Options struct {
	// K is the fractional cache size; must be positive.
	K int
	// Weights are per-tenant static weights (mode A). Exactly one of
	// Weights and Costs must be set.
	Weights []float64
	// Costs enables dynamic marginal weights from convex cost functions
	// (mode B).
	Costs []costfn.Func
	// MaxRounds bounds the normalization iterations per request
	// (default 64).
	MaxRounds int
}

// Result summarizes a fractional run.
type Result struct {
	// FetchCost is the total fractional fetch cost paid, sum over requests
	// of w * y(p) at request time.
	FetchCost float64
	// Mass[i] is tenant i's accumulated fractional miss mass (the
	// fractional analogue of the miss count).
	Mass []float64
	// Requests is the number of requests served.
	Requests int
}

// Cache is the fractional cache state.
type Cache struct {
	opt Options
	// y is the evicted fraction per seen page.
	y     map[trace.PageID]float64
	owner map[trace.PageID]trace.Tenant
	mass  []float64
	res   Result
}

// New validates options and returns an empty fractional cache.
func New(opt Options) (*Cache, error) {
	if opt.K <= 0 {
		return nil, errors.New("fractional: cache size must be positive")
	}
	if (opt.Weights == nil) == (opt.Costs == nil) {
		return nil, errors.New("fractional: set exactly one of Weights or Costs")
	}
	if opt.MaxRounds <= 0 {
		opt.MaxRounds = 64
	}
	return &Cache{
		opt:   opt,
		y:     make(map[trace.PageID]float64),
		owner: make(map[trace.PageID]trace.Tenant),
	}, nil
}

// weight returns tenant i's current per-unit miss weight.
func (c *Cache) weight(i trace.Tenant) float64 {
	if c.opt.Weights != nil {
		if int(i) < len(c.opt.Weights) {
			return c.opt.Weights[i]
		}
		return 1
	}
	var f costfn.Func = costfn.Linear{W: 1}
	if int(i) < len(c.opt.Costs) && c.opt.Costs[i] != nil {
		f = c.opt.Costs[i]
	}
	m := 0.0
	if int(i) < len(c.mass) {
		m = c.mass[i]
	}
	return f.Deriv(m + 1)
}

func (c *Cache) growMass(i trace.Tenant, delta float64) {
	for int(i) >= len(c.mass) {
		c.mass = append(c.mass, 0)
	}
	c.mass[i] += delta
}

// inCacheMass returns sum over seen pages of (1 - y).
func (c *Cache) inCacheMass() float64 {
	total := 0.0
	for _, yp := range c.y {
		total += 1 - yp
	}
	return total
}

// Serve processes one request and returns the fractional fetch cost paid
// for it.
func (c *Cache) Serve(r trace.Request) float64 {
	c.res.Requests++
	yp, seen := c.y[r.Page]
	if !seen {
		yp = 1 // a never-seen page is fully outside
		c.owner[r.Page] = r.Tenant
	}
	cost := 0.0
	if yp > 0 {
		w := c.weight(r.Tenant)
		cost = w * yp
		c.res.FetchCost += cost
		c.growMass(r.Tenant, yp)
	}
	c.y[r.Page] = 0
	// Restore feasibility: total in-cache mass must not exceed k.
	k := float64(c.opt.K)
	for round := 0; round < c.opt.MaxRounds; round++ {
		excess := c.inCacheMass() - k
		if excess <= 1e-12 {
			break
		}
		// Distribute the excess proportionally to the multiplicative rates
		// (y + 1/k)/w over pages other than the requested one, capping at
		// full eviction.
		rateSum := 0.0
		for q, yq := range c.y {
			if q == r.Page || yq >= 1 {
				continue
			}
			rateSum += (yq + 1/k) / c.weight(c.owner[q])
		}
		if rateSum <= 0 {
			break // nothing left to evict fractionally
		}
		eps := excess / rateSum
		for q, yq := range c.y {
			if q == r.Page || yq >= 1 {
				continue
			}
			ny := yq + eps*(yq+1/k)/c.weight(c.owner[q])
			if ny > 1 {
				ny = 1
			}
			c.y[q] = ny
		}
	}
	return cost
}

// Y returns the current evicted fraction of p (1 if never seen).
func (c *Cache) Y(p trace.PageID) float64 {
	if y, ok := c.y[p]; ok {
		return y
	}
	return 1
}

// InCacheMass exposes the feasibility quantity for tests.
func (c *Cache) InCacheMass() float64 { return c.inCacheMass() }

// Result snapshots the accounting, copying the mass vector.
func (c *Cache) Result() Result {
	out := c.res
	out.Mass = append([]float64(nil), c.mass...)
	return out
}

// ConvexCost evaluates sum_i f_i(mass_i) for dynamic-weight runs.
func (c *Cache) ConvexCost() (float64, error) {
	if c.opt.Costs == nil {
		return 0, fmt.Errorf("fractional: ConvexCost requires cost-function mode")
	}
	total := 0.0
	for i, m := range c.mass {
		if i < len(c.opt.Costs) && c.opt.Costs[i] != nil {
			total += c.opt.Costs[i].Value(m)
		} else {
			total += m
		}
	}
	return total, nil
}

// Run replays a trace and returns the result.
func Run(tr *trace.Trace, opt Options) (Result, error) {
	c, err := New(opt)
	if err != nil {
		return Result{}, err
	}
	for _, r := range tr.Requests() {
		c.Serve(r)
	}
	res := c.Result()
	if math.IsNaN(res.FetchCost) || math.IsInf(res.FetchCost, 0) {
		return Result{}, errors.New("fractional: cost accounting diverged")
	}
	return res, nil
}
