package fractional

import (
	"math"
	"math/rand"
	"testing"

	"convexcache/internal/costfn"
	"convexcache/internal/policy"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
	"convexcache/internal/workload"
)

func randomTrace(seed int64, tenants, pagesPer, length int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	b := trace.NewBuilder()
	for i := 0; i < length; i++ {
		tn := rng.Intn(tenants)
		b.Add(trace.Tenant(tn), trace.PageID(tn*100+rng.Intn(pagesPer)))
	}
	return b.MustBuild()
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{K: 0, Weights: []float64{1}}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := New(Options{K: 2}); err == nil {
		t.Error("neither weights nor costs accepted")
	}
	if _, err := New(Options{K: 2, Weights: []float64{1}, Costs: []costfn.Func{costfn.Linear{W: 1}}}); err == nil {
		t.Error("both weights and costs accepted")
	}
}

func TestFeasibilityMaintained(t *testing.T) {
	c, err := New(Options{K: 3, Weights: []float64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	tr := randomTrace(1, 2, 8, 300)
	for _, r := range tr.Requests() {
		c.Serve(r)
		if mass := c.InCacheMass(); mass > 3+1e-9 {
			t.Fatalf("in-cache mass %g exceeds k", mass)
		}
	}
	// The requested page is always fully in cache immediately after.
	last := tr.At(tr.Len() - 1)
	if y := c.Y(last.Page); y != 0 {
		t.Errorf("requested page has y=%g, want 0", y)
	}
}

func TestFractionsStayInUnitInterval(t *testing.T) {
	c, err := New(Options{K: 2, Weights: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	tr := randomTrace(2, 1, 10, 400)
	for _, r := range tr.Requests() {
		c.Serve(r)
	}
	for _, p := range tr.Pages() {
		if y := c.Y(p); y < -1e-12 || y > 1+1e-12 {
			t.Errorf("page %d has y=%g outside [0,1]", p, y)
		}
	}
}

func TestColdMissesPayFullWeight(t *testing.T) {
	c, err := New(Options{K: 4, Weights: []float64{3}})
	if err != nil {
		t.Fatal(err)
	}
	// Four cold requests into an empty cache of size 4: each pays w*1.
	total := 0.0
	for p := 1; p <= 4; p++ {
		total += c.Serve(trace.Request{Page: trace.PageID(p), Tenant: 0})
	}
	if math.Abs(total-12) > 1e-9 {
		t.Errorf("cold cost = %g, want 12", total)
	}
	// Re-requests are free while everything fits.
	if got := c.Serve(trace.Request{Page: 1, Tenant: 0}); got != 0 {
		t.Errorf("warm hit cost = %g", got)
	}
}

func TestFractionalNeverAboveDeterministicOnAdversary(t *testing.T) {
	// On the Theorem 1.4 adversary the deterministic algorithm misses
	// every request (cost ~ T for unit weights). The fractional algorithm
	// pays only the fraction it had evicted: strictly less.
	for _, n := range []int{4, 6, 10} {
		adv, err := workload.NewAdversary(n)
		if err != nil {
			t.Fatal(err)
		}
		k := adv.CacheSize()
		steps := 1500
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = 1
		}
		_, tr, err := sim.RunInteractive(adv, steps, policy.NewLRU(), sim.Config{K: k})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(tr, Options{K: k, Weights: weights})
		if err != nil {
			t.Fatal(err)
		}
		deterministic := float64(steps) // every request a miss
		if res.FetchCost >= deterministic {
			t.Errorf("n=%d: fractional cost %g not below deterministic %g", n, res.FetchCost, deterministic)
		}
		if res.FetchCost <= 0 {
			t.Errorf("n=%d: vacuous fractional cost", n)
		}
	}
}

func TestFractionalGapGrowsLikeLogK(t *testing.T) {
	// Shape check for the O(log k) vs Theta(k) separation: the ratio
	// deterministic/fractional on the adversary should grow roughly like
	// k/log k, so it must at least double from k=3 to k=15.
	ratioAt := func(n int) float64 {
		adv, err := workload.NewAdversary(n)
		if err != nil {
			t.Fatal(err)
		}
		k := adv.CacheSize()
		steps := 3000
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = 1
		}
		_, tr, err := sim.RunInteractive(adv, steps, policy.NewLRU(), sim.Config{K: k})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(tr, Options{K: k, Weights: weights})
		if err != nil {
			t.Fatal(err)
		}
		return float64(steps) / res.FetchCost
	}
	small := ratioAt(4)
	large := ratioAt(16)
	if large < 2*small {
		t.Errorf("det/frac ratio did not grow: k=3 -> %g, k=15 -> %g", small, large)
	}
}

func TestDynamicWeightsConvexCost(t *testing.T) {
	costs := []costfn.Func{costfn.Monomial{C: 1, Beta: 2}, costfn.Linear{W: 0.5}}
	tr := randomTrace(5, 2, 8, 400)
	c, err := New(Options{K: 4, Costs: costs})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tr.Requests() {
		c.Serve(r)
	}
	cc, err := c.ConvexCost()
	if err != nil {
		t.Fatal(err)
	}
	if cc <= 0 {
		t.Errorf("convex cost = %g", cc)
	}
	res := c.Result()
	// Fractional miss mass per tenant is bounded by the request count.
	stats := tr.ComputeStats()
	for i, m := range res.Mass {
		if m < 0 || m > float64(stats.PerTenantRequests[i])+1e-9 {
			t.Errorf("tenant %d mass %g out of range", i, m)
		}
	}
	// Static-weight cache has no ConvexCost.
	cw, err := New(Options{K: 2, Weights: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cw.ConvexCost(); err == nil {
		t.Error("ConvexCost on weight mode accepted")
	}
}

func TestFractionalMassMatchesFetchCostUnitWeights(t *testing.T) {
	// With unit weights, total fetch cost equals total fractional mass.
	tr := randomTrace(8, 2, 9, 500)
	res, err := Run(tr, Options{K: 4, Weights: []float64{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	var mass float64
	for _, m := range res.Mass {
		mass += m
	}
	if math.Abs(mass-res.FetchCost) > 1e-6 {
		t.Errorf("mass %g != fetch cost %g", mass, res.FetchCost)
	}
}
