package policy

import (
	"testing"

	"convexcache/internal/costfn"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// evictionOrder replays tr through p and returns the victims in order.
func evictionOrder(t *testing.T, tr *trace.Trace, p sim.Policy, k int) []trace.PageID {
	t.Helper()
	var out []trace.PageID
	_, err := sim.Run(tr, p, sim.Config{K: k, Observer: func(ev sim.Event) {
		if ev.Evicted >= 0 {
			out = append(out, ev.Evicted)
		}
	}})
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	return out
}

// TestEvictionOrderTable pins the exact victim sequence of every
// deterministic baseline on hand-worked instances; any change to eviction
// order is a behavior change and must show up here.
func TestEvictionOrderTable(t *testing.T) {
	cases := []struct {
		name string
		mk   func() sim.Policy
		tr   func(t *testing.T) *trace.Trace
		k    int
		want []trace.PageID
	}{
		{
			// 1 reaches count 2 via the hit; 2 and then 3 are the coldest.
			name: "lfu/frequency-order",
			mk:   func() sim.Policy { return NewLFU() },
			tr:   func(t *testing.T) *trace.Trace { return seq(t, 1, 1, 2, 3, 4) },
			k:    2,
			want: []trace.PageID{2, 3},
		},
		{
			// All counts equal: the least recently used page loses.
			name: "lfu/tie-break-recency",
			mk:   func() sim.Policy { return NewLFU() },
			tr:   func(t *testing.T) *trace.Trace { return seq(t, 1, 2, 3) },
			k:    2,
			want: []trace.PageID{1},
		},
		{
			// At the miss on 3: next(1)=3 < next(2)=4, so 2 goes; at the
			// final miss neither resident recurs, ties break by lowest id.
			name: "belady/farthest-next-use",
			mk:   func() sim.Policy { return NewBelady() },
			tr:   func(t *testing.T) *trace.Trace { return seq(t, 1, 2, 3, 1, 2) },
			k:    2,
			want: []trace.PageID{2, 1},
		},
		{
			// A never-requested-again page is always the first victim.
			name: "belady/never-again-first",
			mk:   func() sim.Policy { return NewBelady() },
			tr:   func(t *testing.T) *trace.Trace { return seq(t, 1, 2, 3, 1, 3) },
			k:    2,
			want: []trace.PageID{2},
		},
		{
			// Tenant 0 weight 10 vs tenant 1 weight 1: the light tenant's
			// pages run out of credit first, in insertion order.
			name: "greedy-dual/weight-order",
			mk:   func() sim.Policy { return NewGreedyDual([]float64{10, 1}) },
			tr: func(t *testing.T) *trace.Trace {
				return multiSeq(t, [2]int{0, 1}, [2]int{1, 100}, [2]int{1, 101}, [2]int{1, 102})
			},
			k:    2,
			want: []trace.PageID{100, 101},
		},
		{
			// Equal weights: credits tie, seq breaks ties, giving FIFO.
			name: "greedy-dual/equal-weights-fifo",
			mk:   func() sim.Policy { return NewGreedyDual([]float64{1}) },
			tr:   func(t *testing.T) *trace.Trace { return seq(t, 1, 2, 3, 4) },
			k:    2,
			want: []trace.PageID{1, 2},
		},
		{
			// Requester under quota: the most over-quota tenant surrenders
			// its LRU page (tenant 0 holds 2 with quota 1).
			name: "static-partition/over-quota-surrenders",
			mk:   func() sim.Policy { return NewStaticPartition([]int{1, 3}) },
			tr: func(t *testing.T) *trace.Trace {
				return multiSeq(t, [2]int{0, 1}, [2]int{0, 2}, [2]int{1, 100})
			},
			k:    2,
			want: []trace.PageID{1},
		},
		{
			// Requester at quota: it pays with its own LRU page even though
			// another tenant holds pages.
			name: "static-partition/self-pay-at-quota",
			mk:   func() sim.Policy { return NewStaticPartition([]int{1, 1}) },
			tr: func(t *testing.T) *trace.Trace {
				return multiSeq(t, [2]int{0, 1}, [2]int{1, 100}, [2]int{0, 2})
			},
			k:    2,
			want: []trace.PageID{1},
		},
		{
			// Marking: phase ends when all residents are marked; the lowest
			// unmarked id goes first in the new phase.
			name: "marking/phase-reset-lowest-id",
			mk:   func() sim.Policy { return NewMarking() },
			tr:   func(t *testing.T) *trace.Trace { return seq(t, 1, 2, 3, 4) },
			k:    2,
			want: []trace.PageID{1, 2},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got := evictionOrder(t, tc.tr(t), tc.mk(), tc.k)
			if len(got) != len(tc.want) {
				t.Fatalf("evictions = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("evictions = %v, want %v", got, tc.want)
				}
			}
		})
	}
}

// TestHarmonicSamplesInverseToWeight pins the defining property of the
// Harmonic rule: victims are drawn with probability inversely proportional
// to the owner's marginal cost. With linear costs 9 vs 1 the cheap tenant's
// page must be sampled ~90% of the time.
func TestHarmonicSamplesInverseToWeight(t *testing.T) {
	h := NewHarmonic(1, []costfn.Func{costfn.Linear{W: 9}, costfn.Linear{W: 1}})
	h.OnInsert(0, trace.Request{Tenant: 0, Page: 1})
	h.OnInsert(1, trace.Request{Tenant: 1, Page: 2})
	const samples = 2000
	cheap := 0
	for i := 0; i < samples; i++ {
		if h.Victim(2, trace.Request{Tenant: 0, Page: 3}) == 2 {
			cheap++
		}
	}
	// Expected 1800; the seeded rng makes the count deterministic, the wide
	// band just documents the intent.
	if cheap < 1600 || cheap > 1950 {
		t.Errorf("cheap page sampled %d/%d times, want ~90%%", cheap, samples)
	}
}

// TestHarmonicSeedDeterminism: same seed, same trace, same outcome — the
// property sweeps and the check oracles rely on.
func TestHarmonicSeedDeterminism(t *testing.T) {
	tr := multiSeq(t,
		[2]int{0, 1}, [2]int{1, 100}, [2]int{0, 2}, [2]int{1, 101},
		[2]int{0, 3}, [2]int{1, 102}, [2]int{0, 1}, [2]int{1, 100})
	fs := []costfn.Func{costfn.Monomial{C: 1, Beta: 2}, costfn.Linear{W: 2}}
	a := evictionOrder(t, tr, NewHarmonic(7, fs), 2)
	b := evictionOrder(t, tr, NewHarmonic(7, fs), 2)
	if len(a) != len(b) {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
}

// TestRandomResetRestoresSeed: after Reset the rng rewinds, so the victim
// sequence replays exactly.
func TestRandomResetRestoresSeed(t *testing.T) {
	tr := seq(t, 1, 2, 3, 4, 5, 6, 7, 8, 1, 3, 5, 7, 2, 4, 6, 8)
	p := NewRandom(11)
	first := evictionOrder(t, tr, p, 3)
	p.Reset()
	second := evictionOrder(t, tr, p, 3)
	if len(first) != len(second) {
		t.Fatalf("Reset changed eviction count: %v vs %v", first, second)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("Reset changed victims: %v vs %v", first, second)
		}
	}
}

// TestRegistryConstructsTestedBaselines pins that the registry names map to
// the policies the eviction-order table exercises.
func TestRegistryConstructsTestedBaselines(t *testing.T) {
	spec := Spec{K: 4, Tenants: 2, Seed: 3,
		Costs: []costfn.Func{costfn.Linear{W: 1}, costfn.Linear{W: 2}}}
	for name, want := range map[string]string{
		"lfu":              "lfu",
		"belady":           "belady",
		"belady-cost":      "belady-cost",
		"greedy-dual":      "greedy-dual",
		"harmonic":         "harmonic",
		"random":           "random",
		"marking":          "marking",
		"static-partition": "static-partition",
	} {
		if got := MustNew(name, spec).Name(); got != want {
			t.Errorf("MustNew(%q).Name() = %q, want %q", name, got, want)
		}
	}
}
