package policy

import (
	"container/list"

	"convexcache/internal/trace"
)

// Clock is the second-chance algorithm: pages sit on a circular list with a
// reference bit; the hand clears bits until it finds an unreferenced page.
// It is the classical low-overhead LRU approximation used by most operating
// systems.
type Clock struct {
	ring *list.List // circular order, oldest insertion first
	elem map[trace.PageID]*list.Element
	bit  map[trace.PageID]bool
	hand *list.Element
}

// NewClock returns an empty CLOCK policy.
func NewClock() *Clock {
	c := &Clock{}
	c.Reset()
	return c
}

// Name implements sim.Policy.
func (c *Clock) Name() string { return "clock" }

// Reset implements sim.Policy.
func (c *Clock) Reset() {
	c.ring = list.New()
	c.elem = make(map[trace.PageID]*list.Element)
	c.bit = make(map[trace.PageID]bool)
	c.hand = nil
}

// next advances circularly.
func (c *Clock) next(e *list.Element) *list.Element {
	if n := e.Next(); n != nil {
		return n
	}
	return c.ring.Front()
}

// OnHit sets the reference bit.
func (c *Clock) OnHit(step int, r trace.Request) {
	if _, ok := c.elem[r.Page]; ok {
		c.bit[r.Page] = true
	}
}

// OnInsert adds the page just before the hand (the position most recently
// swept), with its reference bit set.
func (c *Clock) OnInsert(step int, r trace.Request) {
	var e *list.Element
	if c.hand == nil {
		e = c.ring.PushBack(r.Page)
		c.hand = e
	} else {
		e = c.ring.InsertBefore(r.Page, c.hand)
	}
	c.elem[r.Page] = e
	c.bit[r.Page] = true
}

// Victim sweeps the hand, clearing bits, until an unreferenced page is
// found. The hand stays on the victim; OnEvict advances it.
func (c *Clock) Victim(step int, r trace.Request) trace.PageID {
	for {
		p := c.hand.Value.(trace.PageID)
		if c.bit[p] {
			c.bit[p] = false
			c.hand = c.next(c.hand)
			continue
		}
		return p
	}
}

// OnEvict removes the page, advancing the hand off it first when needed.
func (c *Clock) OnEvict(step int, p trace.PageID) {
	e, ok := c.elem[p]
	if !ok {
		return
	}
	if c.hand == e {
		if c.ring.Len() == 1 {
			c.hand = nil
		} else {
			c.hand = c.next(e)
		}
	}
	c.ring.Remove(e)
	delete(c.elem, p)
	delete(c.bit, p)
}
