package policy

import (
	"math/rand"
	"testing"

	"convexcache/internal/costfn"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// seq builds a single-tenant trace from page ids.
func seq(t *testing.T, pages ...int) *trace.Trace {
	t.Helper()
	b := trace.NewBuilder()
	for _, p := range pages {
		b.Add(0, trace.PageID(p))
	}
	return b.MustBuild()
}

// multiSeq builds a trace from (tenant, page) pairs.
func multiSeq(t *testing.T, pairs ...[2]int) *trace.Trace {
	t.Helper()
	b := trace.NewBuilder()
	for _, pr := range pairs {
		b.Add(trace.Tenant(pr[0]), trace.PageID(pr[1]))
	}
	return b.MustBuild()
}

func run(t *testing.T, tr *trace.Trace, p sim.Policy, k int) sim.Result {
	t.Helper()
	res, err := sim.Run(tr, p, sim.Config{K: k})
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	return res
}

func TestLRUClassicSequence(t *testing.T) {
	// k=3, sequence 1 2 3 4 1: 4 evicts 1 (LRU), then 1 misses again.
	tr := seq(t, 1, 2, 3, 4, 1)
	res := run(t, tr, NewLRU(), 3)
	if res.TotalMisses() != 5 {
		t.Errorf("LRU misses = %d, want 5", res.TotalMisses())
	}
	// Same sequence but touch 1 before 4: 1 becomes MRU, so 4 evicts 2 and
	// the final 1 hits.
	tr2 := seq(t, 1, 2, 3, 1, 4, 1)
	res2 := run(t, tr2, NewLRU(), 3)
	if res2.Hits != 2 {
		t.Errorf("LRU hits = %d, want 2", res2.Hits)
	}
}

func TestFIFOIgnoresHits(t *testing.T) {
	// k=2: 1,2 resident; hit on 1 does not protect it; 3 evicts 1.
	tr := seq(t, 1, 2, 1, 3, 1)
	res := run(t, tr, NewFIFO(), 2)
	// Misses: 1, 2, 3, then 1 again (evicted) = 4.
	if res.TotalMisses() != 4 {
		t.Errorf("FIFO misses = %d, want 4", res.TotalMisses())
	}
	// LRU protects 1 and only misses 3 times.
	resLRU := run(t, tr, NewLRU(), 2)
	if resLRU.TotalMisses() != 3 {
		t.Errorf("LRU misses = %d, want 3", resLRU.TotalMisses())
	}
}

func TestLFUKeepsHotPage(t *testing.T) {
	// Page 1 is hit many times; LFU must evict a cold page instead.
	tr := seq(t, 1, 1, 1, 2, 3, 1)
	res := run(t, tr, NewLFU(), 2)
	// Misses: 1, 2, 3 (evicts 2, the LFU with count 1 older than 3?).
	// Count for 3: after inserting 3 the cache is {1,3}; final 1 hits.
	if res.TotalMisses() != 3 {
		t.Errorf("LFU misses = %d, want 3", res.TotalMisses())
	}
	if res.Hits != 3 {
		t.Errorf("LFU hits = %d, want 3", res.Hits)
	}
}

func TestLFUTieBreakByRecency(t *testing.T) {
	// Both resident pages have count 1; the earlier-used one is evicted.
	tr := seq(t, 1, 2, 3)
	var evicted trace.PageID = -1
	_, err := sim.Run(tr, NewLFU(), sim.Config{K: 2, Observer: func(ev sim.Event) {
		if ev.Evicted >= 0 {
			evicted = ev.Evicted
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if evicted != 1 {
		t.Errorf("evicted %d, want 1", evicted)
	}
}

func TestRandomDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	b := trace.NewBuilder()
	for i := 0; i < 500; i++ {
		b.Add(0, trace.PageID(rng.Intn(20)))
	}
	tr := b.MustBuild()
	a := run(t, tr, NewRandom(7), 5)
	c := run(t, tr, NewRandom(7), 5)
	if a.TotalMisses() != c.TotalMisses() {
		t.Errorf("same seed, different misses: %d vs %d", a.TotalMisses(), c.TotalMisses())
	}
}

func TestMarkingPhases(t *testing.T) {
	// k=2. 1,2 marked. Request 3: all marked -> phase reset, evict lowest
	// unmarked (1). Cache {2,3}, 3 marked, 2 unmarked.
	tr := seq(t, 1, 2, 3, 2)
	var evicted []trace.PageID
	_, err := sim.Run(tr, NewMarking(), sim.Config{K: 2, Observer: func(ev sim.Event) {
		if ev.Evicted >= 0 {
			evicted = append(evicted, ev.Evicted)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0] != 1 {
		t.Errorf("evictions = %v, want [1]", evicted)
	}
}

func TestLRUKPrefersShortHistory(t *testing.T) {
	// k=2, K=2. Page 1 referenced twice, page 2 once. Victim must be 2
	// (infinite backward 2-distance).
	l := NewLRUK(2)
	tr := seq(t, 1, 1, 2, 3)
	var evicted trace.PageID = -1
	_, err := sim.Run(tr, l, sim.Config{K: 2, Observer: func(ev sim.Event) {
		if ev.Evicted >= 0 {
			evicted = ev.Evicted
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if evicted != 2 {
		t.Errorf("LRU-2 evicted %d, want 2", evicted)
	}
}

func TestLRUKWithK1BehavesLikeLRU(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := trace.NewBuilder()
	for i := 0; i < 400; i++ {
		b.Add(0, trace.PageID(rng.Intn(12)))
	}
	tr := b.MustBuild()
	if got, want := run(t, tr, NewLRUK(1), 4).TotalMisses(), run(t, tr, NewLRU(), 4).TotalMisses(); got != want {
		t.Errorf("LRU-1 misses %d != LRU %d", got, want)
	}
}

func TestGreedyDualFavorsHeavyTenant(t *testing.T) {
	// Tenant 0 weight 10, tenant 1 weight 1. With k=2 and alternating new
	// light pages, heavy pages should be retained.
	w := []float64{10, 1}
	tr := multiSeq(t, [2]int{0, 1}, [2]int{1, 100}, [2]int{1, 101}, [2]int{1, 102}, [2]int{0, 1})
	res := run(t, tr, NewGreedyDual(w), 2)
	// Page 1 (heavy) must survive the light churn: final request hits.
	if res.Misses[0] != 1 {
		t.Errorf("heavy tenant misses = %d, want 1", res.Misses[0])
	}
}

func TestGreedyDualEqualWeightsAgainstLRU(t *testing.T) {
	// With equal weights greedy-dual is a k-competitive weighted-caching
	// rule; it need not equal LRU but must serve the trace without error
	// and with the same cold-miss floor.
	rng := rand.New(rand.NewSource(11))
	b := trace.NewBuilder()
	for i := 0; i < 300; i++ {
		tn := rng.Intn(2)
		b.Add(trace.Tenant(tn), trace.PageID(tn*100+rng.Intn(8)))
	}
	tr := b.MustBuild()
	res := run(t, tr, NewGreedyDual([]float64{1, 1}), 4)
	if res.TotalMisses() < int64(tr.ComputeStats().ColdMisses) {
		t.Errorf("misses below cold-miss floor")
	}
}

func TestStaticPartitionQuotaEnforced(t *testing.T) {
	// k=4, two tenants with quota 2 each. Tenant 0 floods; its own pages
	// must be evicted, never tenant 1's.
	quotas := []int{2, 2}
	b := trace.NewBuilder()
	b.Add(1, 100).Add(1, 101)
	for i := 0; i < 20; i++ {
		b.Add(0, trace.PageID(i))
	}
	b.Add(1, 100).Add(1, 101)
	tr := b.MustBuild()
	res := run(t, tr, NewStaticPartition(quotas), 4)
	if res.Misses[1] != 2 {
		t.Errorf("tenant 1 misses = %d, want 2 (cold only)", res.Misses[1])
	}
	if res.Evictions[1] != 0 {
		t.Errorf("tenant 1 evictions = %d, want 0", res.Evictions[1])
	}
}

func TestStaticPartitionOverQuotaSurrenders(t *testing.T) {
	// Tenant 0 over quota (quota 1), tenant 1 under quota (quota 3): a
	// tenant-1 insert takes a page from tenant 0.
	quotas := []int{1, 3}
	tr := multiSeq(t, [2]int{0, 1}, [2]int{0, 2}, [2]int{1, 100})
	var evictedTenant trace.Tenant = -1
	_, err := sim.Run(tr, NewStaticPartition(quotas), sim.Config{K: 2, Observer: func(ev sim.Event) {
		if ev.Evicted >= 0 {
			evictedTenant = ev.EvictedTenant
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if evictedTenant != 0 {
		t.Errorf("evicted tenant = %d, want 0", evictedTenant)
	}
}

func TestStaticPartitionSurrenderTieBreakDeterministic(t *testing.T) {
	// Tenants 1..3 each hold one page at exactly their quota (over = 0,
	// a three-way tie); tenant 0 is under quota and inserts into a full
	// cache. The surrendering tenant must be the lowest tenant ID, and
	// the whole eviction sequence must be identical across fresh policy
	// instances (map iteration order must not leak into victim choice).
	quotas := []int{2, 1, 1, 1}
	tr := multiSeq(t, [2]int{1, 101}, [2]int{2, 201}, [2]int{3, 301},
		[2]int{0, 1}, [2]int{0, 2})
	var want []trace.Tenant
	for i := 0; i < 20; i++ {
		var got []trace.Tenant
		_, err := sim.Run(tr, NewStaticPartition(quotas), sim.Config{K: 4, Observer: func(ev sim.Event) {
			if ev.Evicted >= 0 {
				got = append(got, ev.EvictedTenant)
			}
		}})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 || got[0] != 1 {
			t.Fatalf("run %d: eviction tenants = %v, want first surrender by tenant 1", i, got)
		}
		if i == 0 {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("run %d: %d evictions, run 0 had %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("run %d eviction %d: tenant %d, run 0 evicted %d", i, j, got[j], want[j])
			}
		}
	}
}

func TestBeladyHandExample(t *testing.T) {
	// k=2, sequence 1 2 3 1 2: MIN evicts 3's... at request 3 cache {1,2};
	// victim = page with farthest next use: 2 (next at step 4) vs 1 (step
	// 3) -> evict 2? No: farthest next use is evicted, 2's next (4) >
	// 1's (3), so evict 2. Then 1 hits, 2 misses. Total misses 4? MIN
	// alternative: evict 1 -> 1 misses, 2 hits: also 4. Optimal is 4.
	tr := seq(t, 1, 2, 3, 1, 2)
	res := run(t, tr, NewBelady(), 2)
	if res.TotalMisses() != 4 {
		t.Errorf("Belady misses = %d, want 4", res.TotalMisses())
	}
}

func TestBeladyNeverWorseThanOnlinePolicies(t *testing.T) {
	// MIN is optimal for unit costs; on random single-tenant traces its
	// miss count must lower-bound every online policy's.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		b := trace.NewBuilder()
		for i := 0; i < 200; i++ {
			b.Add(0, trace.PageID(rng.Intn(10)))
		}
		tr := b.MustBuild()
		k := 2 + rng.Intn(4)
		min := run(t, tr, NewBelady(), k).TotalMisses()
		for _, p := range []sim.Policy{NewLRU(), NewFIFO(), NewLFU(), NewMarking(), NewLRUK(2), NewRandom(5)} {
			if got := run(t, tr, p, k).TotalMisses(); got < min {
				t.Errorf("trial %d: %s misses %d < Belady %d", trial, p.Name(), got, min)
			}
		}
	}
}

func TestCostAwareBeladyPrefersCheapVictims(t *testing.T) {
	// Tenant 0 has steep quadratic cost, tenant 1 linear-cheap. Equal
	// next-use distances: the cheap tenant's page goes first.
	fs := []costfn.Func{costfn.Monomial{C: 10, Beta: 2}, costfn.Linear{W: 0.1}}
	// Cache k=2: insert 1 (t0), 100 (t1); request 200 (t1) forces an
	// eviction; both residents are needed again at the same distance.
	tr := multiSeq(t, [2]int{0, 1}, [2]int{1, 100}, [2]int{1, 200}, [2]int{0, 1}, [2]int{1, 100})
	var evicted trace.PageID = -1
	cab := NewCostAwareBelady(fs)
	_, err := sim.Run(tr, cab, sim.Config{K: 2, Observer: func(ev sim.Event) {
		if ev.Evicted >= 0 && evicted == -1 {
			evicted = ev.Evicted
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if evicted != 100 {
		t.Errorf("evicted %d, want cheap tenant's page 100", evicted)
	}
}

func TestResetReproducibility(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := trace.NewBuilder()
	for i := 0; i < 300; i++ {
		tn := rng.Intn(2)
		b.Add(trace.Tenant(tn), trace.PageID(tn*1000+rng.Intn(9)))
	}
	tr := b.MustBuild()
	policies := []sim.Policy{
		NewLRU(), NewFIFO(), NewLFU(), NewRandom(1), NewMarking(),
		NewLRUK(2), NewGreedyDual([]float64{2, 1}),
		NewStaticPartition([]int{2, 2}), NewBelady(),
		NewCostAwareBelady([]costfn.Func{costfn.Linear{W: 1}, costfn.Linear{W: 2}}),
	}
	for _, p := range policies {
		first := run(t, tr, p, 4)
		p.Reset()
		second := run(t, tr, p, 4)
		if first.TotalMisses() != second.TotalMisses() || first.Hits != second.Hits {
			t.Errorf("%s not reproducible after Reset: %d/%d vs %d/%d",
				p.Name(), first.TotalMisses(), first.Hits, second.TotalMisses(), second.Hits)
		}
	}
}

func TestRegistry(t *testing.T) {
	spec := Spec{K: 4, Tenants: 2, Weights: []float64{1, 2},
		Costs: []costfn.Func{costfn.Linear{W: 1}, costfn.Linear{W: 2}}, Seed: 1}
	for _, name := range Names() {
		p, err := New(name, spec)
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if p.Name() == "" {
			t.Errorf("policy %q has empty name", name)
		}
	}
	if _, err := New("nope", spec); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestEvenQuotas(t *testing.T) {
	q := EvenQuotas(7, 3)
	if q[0] != 3 || q[1] != 2 || q[2] != 2 {
		t.Errorf("EvenQuotas(7,3) = %v", q)
	}
	sum := 0
	for _, v := range EvenQuotas(10, 4) {
		sum += v
	}
	if sum != 10 {
		t.Errorf("quotas do not sum to k")
	}
}

// Cross-policy engine property: miss counts never fall below cold misses
// and never exceed the request count.
func TestAllPoliciesSaneMissBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	b := trace.NewBuilder()
	for i := 0; i < 400; i++ {
		tn := rng.Intn(3)
		b.Add(trace.Tenant(tn), trace.PageID(tn*1000+rng.Intn(15)))
	}
	tr := b.MustBuild()
	stats := tr.ComputeStats()
	spec := Spec{K: 6, Tenants: 3, Seed: 9,
		Costs: []costfn.Func{costfn.Linear{W: 1}, costfn.Linear{W: 1}, costfn.Linear{W: 1}}}
	for _, name := range Names() {
		p, err := New(name, spec)
		if err != nil {
			t.Fatal(err)
		}
		res := run(t, tr, p, 6)
		if res.TotalMisses() < int64(stats.ColdMisses) {
			t.Errorf("%s: misses %d below cold floor %d", name, res.TotalMisses(), stats.ColdMisses)
		}
		if res.TotalMisses() > int64(tr.Len()) {
			t.Errorf("%s: misses %d exceed requests", name, res.TotalMisses())
		}
		if res.Hits+res.TotalMisses() != int64(tr.Len()) {
			t.Errorf("%s: hits+misses != T", name)
		}
	}
}
