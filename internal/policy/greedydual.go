package policy

import (
	"container/heap"

	"convexcache/internal/trace"
)

// GreedyDual is Young's weighted-caching algorithm (Algorithmica 1994),
// the k-competitive primal-dual rule for linear per-tenant miss costs
// f_i(x) = w_i * x. Each resident page holds a credit initialized to its
// tenant weight; evicting charges every resident page the victim's remaining
// credit (implemented with a global offset), and a hit restores the page's
// credit to its full weight.
//
// It is the linear-cost special case of the paper's ALG-DISCRETE: with
// constant derivatives the budget updates of Figure 3 reduce exactly to
// this rule.
type GreedyDual struct {
	weights []float64 // weight per tenant
	offset  float64   // accumulated aging L
	h       gdHeap
	items   map[trace.PageID]*gdItem
	seq     int // insertion sequence for deterministic tie-break
}

type gdItem struct {
	page  trace.PageID
	base  float64 // credit + offset-at-set time
	seq   int
	index int
}

type gdHeap []*gdItem

func (h gdHeap) Len() int { return len(h) }
func (h gdHeap) Less(i, j int) bool {
	if h[i].base != h[j].base {
		return h[i].base < h[j].base
	}
	return h[i].seq < h[j].seq
}
func (h gdHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *gdHeap) Push(x any) {
	it := x.(*gdItem)
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *gdHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// NewGreedyDual builds the policy from per-tenant weights; tenants beyond
// the slice get weight 1.
func NewGreedyDual(weights []float64) *GreedyDual {
	return &GreedyDual{
		weights: append([]float64(nil), weights...),
		items:   make(map[trace.PageID]*gdItem),
	}
}

// Name implements sim.Policy.
func (g *GreedyDual) Name() string { return "greedy-dual" }

func (g *GreedyDual) weight(t trace.Tenant) float64 {
	if int(t) < len(g.weights) {
		return g.weights[t]
	}
	return 1
}

func (g *GreedyDual) set(p trace.PageID, credit float64) {
	base := credit + g.offset
	g.seq++
	if it, ok := g.items[p]; ok {
		it.base = base
		it.seq = g.seq // ties break by least-recently-requested
		heap.Fix(&g.h, it.index)
		return
	}
	it := &gdItem{page: p, base: base, seq: g.seq}
	g.items[p] = it
	heap.Push(&g.h, it)
}

// OnHit restores the page's credit to its tenant weight.
func (g *GreedyDual) OnHit(step int, r trace.Request) { g.set(r.Page, g.weight(r.Tenant)) }

// OnInsert sets the initial credit to the tenant weight.
func (g *GreedyDual) OnInsert(step int, r trace.Request) { g.set(r.Page, g.weight(r.Tenant)) }

// Victim returns the page with minimum remaining credit and ages all
// residents by that amount (via the offset).
func (g *GreedyDual) Victim(step int, r trace.Request) trace.PageID {
	top := g.h[0]
	// Remaining credit of the victim; aging everyone by it leaves the
	// victim at zero.
	g.offset = top.base
	return top.page
}

// OnEvict removes the page.
func (g *GreedyDual) OnEvict(step int, p trace.PageID) {
	if it, ok := g.items[p]; ok {
		heap.Remove(&g.h, it.index)
		delete(g.items, p)
	}
}

// Reset implements sim.Policy.
func (g *GreedyDual) Reset() {
	g.offset = 0
	g.h = nil
	g.items = make(map[trace.PageID]*gdItem)
	g.seq = 0
}
