package policy

import (
	"container/list"

	"convexcache/internal/trace"
)

// StaticPartition models the "static memory allocation" strawman of the
// paper's introduction: each tenant gets a fixed page quota and runs LRU
// within it. When a tenant exceeds its quota the victim comes from that
// tenant's own pages; otherwise (cache globally full but the tenant under
// quota) the most over-quota tenant surrenders its LRU page.
type StaticPartition struct {
	quotas []int
	lists  map[trace.Tenant]*list.List // front = most recent
	elem   map[trace.PageID]*list.Element
	owner  map[trace.PageID]trace.Tenant
}

// NewStaticPartition builds the policy from per-tenant quotas. Tenants
// beyond the slice get quota 0 (always surrender first).
func NewStaticPartition(quotas []int) *StaticPartition {
	return &StaticPartition{
		quotas: append([]int(nil), quotas...),
		lists:  make(map[trace.Tenant]*list.List),
		elem:   make(map[trace.PageID]*list.Element),
		owner:  make(map[trace.PageID]trace.Tenant),
	}
}

// EvenQuotas splits k among n tenants as evenly as possible (first tenants
// get the remainder).
func EvenQuotas(k, n int) []int {
	q := make([]int, n)
	for i := range q {
		q[i] = k / n
		if i < k%n {
			q[i]++
		}
	}
	return q
}

// Name implements sim.Policy.
func (s *StaticPartition) Name() string { return "static-partition" }

func (s *StaticPartition) quota(t trace.Tenant) int {
	if int(t) < len(s.quotas) {
		return s.quotas[t]
	}
	return 0
}

func (s *StaticPartition) tenantList(t trace.Tenant) *list.List {
	l, ok := s.lists[t]
	if !ok {
		l = list.New()
		s.lists[t] = l
	}
	return l
}

// OnHit moves the page to the front of its tenant's list.
func (s *StaticPartition) OnHit(step int, r trace.Request) {
	if e, ok := s.elem[r.Page]; ok {
		s.tenantList(r.Tenant).MoveToFront(e)
	}
}

// OnInsert records the page in its tenant's list.
func (s *StaticPartition) OnInsert(step int, r trace.Request) {
	s.elem[r.Page] = s.tenantList(r.Tenant).PushFront(r.Page)
	s.owner[r.Page] = r.Tenant
}

// Victim picks per the partition rule described on the type.
func (s *StaticPartition) Victim(step int, r trace.Request) trace.PageID {
	// If the requesting tenant is at or above quota, it pays with its own
	// LRU page.
	if l := s.tenantList(r.Tenant); l.Len() >= s.quota(r.Tenant) && l.Len() > 0 {
		return l.Back().Value.(trace.PageID)
	}
	// Otherwise the most over-quota tenant surrenders its LRU page. Ties
	// break toward the lowest tenant ID so the choice is independent of
	// map iteration order — the replay oracles require victim selection
	// to be a pure function of the request history.
	var best trace.Tenant
	bestOver := -1 << 62
	found := false
	for t, l := range s.lists {
		if l.Len() == 0 || t == r.Tenant {
			continue
		}
		over := l.Len() - s.quota(t)
		if over > bestOver || (over == bestOver && t < best) {
			best, bestOver, found = t, over, true
		}
	}
	if !found {
		// Only the requester holds pages; fall back to its own LRU.
		return s.tenantList(r.Tenant).Back().Value.(trace.PageID)
	}
	return s.lists[best].Back().Value.(trace.PageID)
}

// OnEvict removes the page from its tenant's list.
func (s *StaticPartition) OnEvict(step int, p trace.PageID) {
	e, ok := s.elem[p]
	if !ok {
		return
	}
	s.lists[s.owner[p]].Remove(e)
	delete(s.elem, p)
	delete(s.owner, p)
}

// Reset implements sim.Policy.
func (s *StaticPartition) Reset() {
	s.lists = make(map[trace.Tenant]*list.List)
	s.elem = make(map[trace.PageID]*list.Element)
	s.owner = make(map[trace.PageID]trace.Tenant)
}
