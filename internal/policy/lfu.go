package policy

import (
	"container/heap"

	"convexcache/internal/trace"
)

// LFU evicts the page with the fewest accesses since insertion, breaking
// ties by least recent use. Frequencies are reset on eviction (no history
// across residencies).
type LFU struct {
	h     lfuHeap
	items map[trace.PageID]*lfuItem
}

type lfuItem struct {
	page     trace.PageID
	count    int64
	lastUsed int // step of last access, tie-break
	index    int // heap index
}

type lfuHeap []*lfuItem

func (h lfuHeap) Len() int { return len(h) }
func (h lfuHeap) Less(i, j int) bool {
	if h[i].count != h[j].count {
		return h[i].count < h[j].count
	}
	return h[i].lastUsed < h[j].lastUsed
}
func (h lfuHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *lfuHeap) Push(x any) {
	it := x.(*lfuItem)
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *lfuHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// NewLFU returns an empty LFU policy.
func NewLFU() *LFU {
	return &LFU{items: make(map[trace.PageID]*lfuItem)}
}

// Name implements sim.Policy.
func (l *LFU) Name() string { return "lfu" }

// OnHit increments the page's frequency.
func (l *LFU) OnHit(step int, r trace.Request) {
	if it, ok := l.items[r.Page]; ok {
		it.count++
		it.lastUsed = step
		heap.Fix(&l.h, it.index)
	}
}

// OnInsert starts the page at frequency 1.
func (l *LFU) OnInsert(step int, r trace.Request) {
	it := &lfuItem{page: r.Page, count: 1, lastUsed: step}
	l.items[r.Page] = it
	heap.Push(&l.h, it)
}

// Victim returns the least-frequently-used page.
func (l *LFU) Victim(step int, r trace.Request) trace.PageID {
	return l.h[0].page
}

// OnEvict removes the page and forgets its frequency.
func (l *LFU) OnEvict(step int, p trace.PageID) {
	if it, ok := l.items[p]; ok {
		heap.Remove(&l.h, it.index)
		delete(l.items, p)
	}
}

// Reset implements sim.Policy.
func (l *LFU) Reset() {
	l.h = nil
	l.items = make(map[trace.PageID]*lfuItem)
}
