package policy

import (
	"fmt"

	"convexcache/internal/costfn"
	"convexcache/internal/sim"
)

// Spec carries everything baseline factories may need; unused fields are
// ignored by policies that don't need them.
type Spec struct {
	// K is the cache size (for static partition quotas).
	K int
	// Tenants is the tenant count.
	Tenants int
	// Weights are per-tenant linear weights (greedy-dual).
	Weights []float64
	// Costs are per-tenant cost functions (cost-aware Belady).
	Costs []costfn.Func
	// Seed seeds randomized policies.
	Seed int64
}

// New constructs a baseline policy by name. Names: lru, fifo, lfu, random,
// marking, lru2, greedy-dual, static-partition, belady, belady-cost.
func New(name string, spec Spec) (sim.Policy, error) {
	switch name {
	case "lru":
		return NewLRU(), nil
	case "fifo":
		return NewFIFO(), nil
	case "lfu":
		return NewLFU(), nil
	case "random":
		return NewRandom(spec.Seed), nil
	case "random-marking":
		return NewRandomMarking(spec.Seed), nil
	case "arc":
		return NewARC(), nil
	case "clock":
		return NewClock(), nil
	case "tinylfu":
		return NewTinyLFU(4096, 16*int64(max(spec.K, 1))), nil
	case "2q":
		return NewTwoQ(0, 0), nil
	case "harmonic":
		return NewHarmonic(spec.Seed, spec.Costs), nil
	case "marking":
		return NewMarking(), nil
	case "lru2":
		return NewLRUK(2), nil
	case "greedy-dual":
		w := spec.Weights
		if len(w) == 0 {
			w = make([]float64, spec.Tenants)
			for i := range w {
				w[i] = 1
			}
		}
		return NewGreedyDual(w), nil
	case "static-partition":
		n := spec.Tenants
		if n <= 0 {
			n = 1
		}
		return NewStaticPartition(EvenQuotas(spec.K, n)), nil
	case "belady":
		return NewBelady(), nil
	case "belady-cost":
		return NewCostAwareBelady(spec.Costs), nil
	default:
		return nil, fmt.Errorf("policy: unknown policy %q", name)
	}
}

// MustNew is New that panics on an unknown name; for tests and static
// tables whose names are known good.
func MustNew(name string, spec Spec) sim.Policy {
	p, err := New(name, spec)
	if err != nil {
		panic(err)
	}
	return p
}

// Names lists the registered baseline policy names.
func Names() []string {
	return []string{"lru", "fifo", "lfu", "random", "random-marking", "marking",
		"lru2", "arc", "clock", "tinylfu", "2q", "harmonic", "greedy-dual",
		"static-partition", "belady", "belady-cost"}
}
