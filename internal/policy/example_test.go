package policy_test

import (
	"fmt"

	"convexcache/internal/costfn"
	"convexcache/internal/policy"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// ExampleNew constructs baselines by name and replays a trace through each.
func ExampleNew() {
	tr := trace.NewBuilder().
		Add(0, 1).Add(0, 2).Add(0, 3).Add(0, 1).Add(0, 2).Add(0, 3).
		MustBuild()
	spec := policy.Spec{K: 2, Tenants: 1, Seed: 1,
		Costs: []costfn.Func{costfn.Linear{W: 1}}}
	for _, name := range []string{"lru", "belady"} {
		p, _ := policy.New(name, spec)
		res := sim.MustRun(tr, p, sim.Config{K: 2})
		fmt.Printf("%s: %d misses\n", name, res.TotalMisses())
	}
	// LRU misses everything on a cyclic scan; Belady (offline MIN) hits.
	// Output:
	// lru: 6 misses
	// belady: 4 misses
}

// ExampleNewLookahead shows the semi-online policy: a window of future
// knowledge between fully online and offline.
func ExampleNewLookahead() {
	costs := []costfn.Func{costfn.Linear{W: 1}}
	tr := trace.NewBuilder().
		Add(0, 1).Add(0, 2).Add(0, 3).Add(0, 1).
		MustBuild()
	// With a 3-step window the policy sees page 1 returning and evicts 2.
	p := policy.NewLookahead(3, costs)
	res := sim.MustRun(tr, p, sim.Config{K: 2})
	fmt.Printf("misses=%d hits=%d\n", res.TotalMisses(), res.Hits)
	// Output:
	// misses=3 hits=1
}
