package policy

import (
	"math/rand"
	"sort"

	"convexcache/internal/trace"
)

// RandomMarking is the classical randomized marking algorithm (Fiat et al.),
// the O(log k)-competitive randomized counterpart of the deterministic
// baselines; the paper's related work ([3], Bansal-Buchbinder-Naor) builds
// its randomized weighted-caching results on the same phase structure.
// Pages are marked on access; the victim is a uniformly random unmarked
// page; when all resident pages are marked a new phase begins.
type RandomMarking struct {
	seed   int64
	rng    *rand.Rand
	marked map[trace.PageID]bool
	// unmarked holds the currently unmarked resident pages for O(1)
	// uniform sampling.
	unmarked []trace.PageID
	pos      map[trace.PageID]int
}

// NewRandomMarking returns the policy with a deterministic seed.
func NewRandomMarking(seed int64) *RandomMarking {
	r := &RandomMarking{seed: seed}
	r.Reset()
	return r
}

// Name implements sim.Policy.
func (r *RandomMarking) Name() string { return "random-marking" }

// Reset implements sim.Policy.
func (r *RandomMarking) Reset() {
	r.rng = rand.New(rand.NewSource(r.seed))
	r.marked = make(map[trace.PageID]bool)
	r.unmarked = nil
	r.pos = make(map[trace.PageID]int)
}

func (r *RandomMarking) mark(p trace.PageID) {
	if r.marked[p] {
		return
	}
	r.marked[p] = true
	if i, ok := r.pos[p]; ok {
		last := len(r.unmarked) - 1
		r.unmarked[i] = r.unmarked[last]
		r.pos[r.unmarked[i]] = i
		r.unmarked = r.unmarked[:last]
		delete(r.pos, p)
	}
}

func (r *RandomMarking) unmark(p trace.PageID) {
	r.marked[p] = false
	r.pos[p] = len(r.unmarked)
	r.unmarked = append(r.unmarked, p)
}

// OnHit marks the page.
func (r *RandomMarking) OnHit(step int, req trace.Request) { r.mark(req.Page) }

// OnInsert marks the freshly inserted page.
func (r *RandomMarking) OnInsert(step int, req trace.Request) {
	// Ensure the page is tracked, then mark it.
	if _, ok := r.marked[req.Page]; !ok {
		r.unmark(req.Page)
	}
	r.mark(req.Page)
}

// Victim picks a uniformly random unmarked page, starting a new phase if
// necessary.
func (r *RandomMarking) Victim(step int, req trace.Request) trace.PageID {
	if len(r.unmarked) == 0 {
		// Phase change: unmark everything resident, in sorted order so the
		// seeded sampling is reproducible (map iteration order is not).
		var pages []trace.PageID
		for p, marked := range r.marked {
			if marked {
				pages = append(pages, p)
			}
		}
		sort.Slice(pages, func(a, b int) bool { return pages[a] < pages[b] })
		for _, p := range pages {
			r.unmark(p)
		}
	}
	return r.unmarked[r.rng.Intn(len(r.unmarked))]
}

// OnEvict forgets the page entirely.
func (r *RandomMarking) OnEvict(step int, p trace.PageID) {
	if i, ok := r.pos[p]; ok {
		last := len(r.unmarked) - 1
		r.unmarked[i] = r.unmarked[last]
		r.pos[r.unmarked[i]] = i
		r.unmarked = r.unmarked[:last]
		delete(r.pos, p)
	}
	delete(r.marked, p)
}
