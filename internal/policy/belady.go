package policy

import (
	"convexcache/internal/trace"

	"convexcache/internal/costfn"
)

// Belady is the offline MIN algorithm (Belady 1966): evict the resident
// page whose next request is farthest in the future (never-again pages
// first). It is optimal for the classical single-tenant unit-cost problem
// and a strong heuristic comparator for the convex-cost problem.
type Belady struct {
	ix *trace.Indexed
	// nextPtr[p] indexes into ix.RequestTimes[p]: the first entry not yet
	// in the past.
	nextPtr  map[trace.PageID]int
	resident map[trace.PageID]bool
}

// NewBelady returns the offline MIN policy; the engine will call Prepare.
func NewBelady() *Belady {
	return &Belady{nextPtr: make(map[trace.PageID]int), resident: make(map[trace.PageID]bool)}
}

// Name implements sim.Policy.
func (b *Belady) Name() string { return "belady" }

// Prepare implements sim.OfflinePolicy.
func (b *Belady) Prepare(ix *trace.Indexed) { b.ix = ix }

// nextUse returns the step of the first request of p strictly after step,
// or a sentinel past the trace end when p is never requested again.
func (b *Belady) nextUse(p trace.PageID, step int) int {
	times := b.ix.RequestTimes[p]
	i := b.nextPtr[p]
	for i < len(times) && times[i] <= step {
		i++
	}
	b.nextPtr[p] = i
	if i == len(times) {
		return b.ix.Len() + 1
	}
	return times[i]
}

// OnHit is a no-op; future knowledge is in the prepared index.
func (b *Belady) OnHit(step int, r trace.Request) {}

// OnInsert marks the page resident.
func (b *Belady) OnInsert(step int, r trace.Request) { b.resident[r.Page] = true }

// Victim returns the resident page with the farthest next use.
func (b *Belady) Victim(step int, r trace.Request) trace.PageID {
	var best trace.PageID
	bestNext := -1
	for p := range b.resident {
		next := b.nextUse(p, step)
		if next > bestNext || (next == bestNext && p < best) {
			best, bestNext = p, next
		}
	}
	return best
}

// OnEvict removes the page.
func (b *Belady) OnEvict(step int, p trace.PageID) { delete(b.resident, p) }

// Reset implements sim.Policy.
func (b *Belady) Reset() {
	b.nextPtr = make(map[trace.PageID]int)
	b.resident = make(map[trace.PageID]bool)
}

// CostAwareBelady is the convex-cost variant of MIN used as an offline
// heuristic comparator: among resident pages it evicts the one minimizing
// marginalCost(owner) / nextUseDistance, i.e. it prefers victims that are
// cheap to miss again and not needed soon. With linear unit costs it
// coincides with Belady on ties-free inputs.
type CostAwareBelady struct {
	Belady
	fs     []costfn.Func
	misses map[trace.Tenant]float64
	owner  map[trace.PageID]trace.Tenant
}

// NewCostAwareBelady builds the heuristic with the tenants' cost functions.
func NewCostAwareBelady(fs []costfn.Func) *CostAwareBelady {
	return &CostAwareBelady{
		Belady: *NewBelady(),
		fs:     fs,
		misses: make(map[trace.Tenant]float64),
		owner:  make(map[trace.PageID]trace.Tenant),
	}
}

// Name implements sim.Policy.
func (c *CostAwareBelady) Name() string { return "belady-cost" }

// OnInsert tracks residency, ownership and the miss count driving the
// marginal cost.
func (c *CostAwareBelady) OnInsert(step int, r trace.Request) {
	c.Belady.OnInsert(step, r)
	c.owner[r.Page] = r.Tenant
	c.misses[r.Tenant]++
}

func (c *CostAwareBelady) marginal(t trace.Tenant) float64 {
	if int(t) >= len(c.fs) {
		return 0 // dummy tenants are free to miss
	}
	return costfn.DiscreteDeriv(c.fs[t], c.misses[t])
}

// Victim minimizes marginal-miss-cost divided by distance to next use.
func (c *CostAwareBelady) Victim(step int, r trace.Request) trace.PageID {
	var best trace.PageID
	bestScore := 0.0
	found := false
	for p := range c.resident {
		next := c.nextUse(p, step)
		dist := float64(next - step)
		score := c.marginal(c.owner[p]) / dist
		if !found || score < bestScore || (score == bestScore && p < best) {
			best, bestScore, found = p, score, true
		}
	}
	return best
}

// OnEvict removes the page.
func (c *CostAwareBelady) OnEvict(step int, p trace.PageID) {
	c.Belady.OnEvict(step, p)
	delete(c.owner, p)
}

// Reset implements sim.Policy.
func (c *CostAwareBelady) Reset() {
	c.Belady.Reset()
	c.misses = make(map[trace.Tenant]float64)
	c.owner = make(map[trace.PageID]trace.Tenant)
}
