package policy

import (
	"math/rand"
	"testing"

	"convexcache/internal/costfn"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

func unitCosts(n int) []costfn.Func {
	out := make([]costfn.Func, n)
	for i := range out {
		out[i] = costfn.Linear{W: 1}
	}
	return out
}

func TestLookaheadZeroWindowStillServes(t *testing.T) {
	tr := seq(t, 1, 2, 3, 1, 2, 3)
	res := run(t, tr, NewLookahead(0, unitCosts(1)), 2)
	if res.TotalMisses() < 4 || res.TotalMisses() > int64(tr.Len()) {
		t.Errorf("misses = %d out of range", res.TotalMisses())
	}
}

func TestLookaheadHugeWindowMatchesCostAwareBelady(t *testing.T) {
	costs := []costfn.Func{costfn.Monomial{C: 1, Beta: 2}, costfn.Linear{W: 1}}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 6; trial++ {
		b := trace.NewBuilder()
		for i := 0; i < 300; i++ {
			tn := rng.Intn(2)
			b.Add(trace.Tenant(tn), trace.PageID(tn*100+rng.Intn(8)))
		}
		tr := b.MustBuild()
		k := 4
		la := run(t, tr, NewLookahead(tr.Len()+1, costs), k)
		cab := run(t, tr, NewCostAwareBelady(costs), k)
		// The two full-information heuristics rank never-requested-again
		// pages slightly differently (pure marginal vs marginal over
		// distance-to-end); costs must agree within 1%.
		ratio := la.Cost(costs) / cab.Cost(costs)
		if ratio < 0.99 || ratio > 1.01 {
			t.Errorf("trial %d: lookahead(inf) cost %g vs belady-cost %g (ratio %g)",
				trial, la.Cost(costs), cab.Cost(costs), ratio)
		}
	}
}

func TestLookaheadMonotoneInWindow(t *testing.T) {
	// More future information should not make the heuristic much worse:
	// across windows, cost at L=trace length must be the minimum of the
	// sampled windows (allowing heuristic noise at intermediate L).
	costs := []costfn.Func{costfn.Monomial{C: 1, Beta: 2}, costfn.Linear{W: 0.5}}
	rng := rand.New(rand.NewSource(4))
	b := trace.NewBuilder()
	for i := 0; i < 800; i++ {
		tn := rng.Intn(2)
		b.Add(trace.Tenant(tn), trace.PageID(tn*100+rng.Intn(12)))
	}
	tr := b.MustBuild()
	k := 6
	costAt := func(l int) float64 {
		return run(t, tr, NewLookahead(l, costs), k).Cost(costs)
	}
	full := costAt(tr.Len() + 1)
	for _, l := range []int{0, 4, 16, 64} {
		// The window policy is a heuristic, not an optimum, so a longer
		// window can very occasionally cost a hair more; allow 1% slack
		// while catching real inversions.
		if c := costAt(l); c < full*0.99 {
			t.Errorf("window %d cost %g well below full-information cost %g", l, c, full)
		}
	}
	// Informativeness: zero lookahead must be strictly worse than full.
	if costAt(0) <= full {
		t.Errorf("zero lookahead cost %g not above full-information %g", costAt(0), full)
	}
}

func TestLookaheadPrefersOutOfWindowVictims(t *testing.T) {
	// k=2: page 1 requested again soon, page 2 never again. With L=3 the
	// victim must be page 2.
	costs := unitCosts(1)
	tr := seq(t, 1, 2, 3, 1)
	var evicted trace.PageID = -1
	la := NewLookahead(3, costs)
	_, err := sim.Run(tr, la, sim.Config{K: 2, Observer: func(ev sim.Event) {
		if ev.Evicted >= 0 {
			evicted = ev.Evicted
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if evicted != 2 {
		t.Errorf("evicted %d, want 2", evicted)
	}
}
