package policy

import (
	"math/rand"
	"testing"

	"convexcache/internal/costfn"
	"convexcache/internal/trace"
)

func TestTwoQBasic(t *testing.T) {
	tr := seq(t, 1, 2, 3, 1, 2, 3)
	res := run(t, tr, NewTwoQ(0, 0), 3)
	if res.TotalMisses() != 3 {
		t.Errorf("misses = %d, want 3", res.TotalMisses())
	}
}

func TestTwoQScanResistance(t *testing.T) {
	// Hot pages cycle between long single-use scans: 2Q's probation queue
	// absorbs the scan and the protected queue keeps the hot set.
	b := trace.NewBuilder()
	scan := 1000
	for round := 0; round < 100; round++ {
		for h := 0; h < 4; h++ {
			b.Add(0, trace.PageID(h))
		}
		for s := 0; s < 6; s++ {
			scan++
			b.Add(0, trace.PageID(scan))
		}
	}
	tr := b.MustBuild()
	k := 8
	twoq := run(t, tr, NewTwoQ(0, 0), k)
	lru := run(t, tr, NewLRU(), k)
	if twoq.TotalMisses() >= lru.TotalMisses() {
		t.Errorf("2Q misses %d not below LRU %d under scan pollution",
			twoq.TotalMisses(), lru.TotalMisses())
	}
}

func TestTwoQGhostPromotion(t *testing.T) {
	// A page evicted from probation and re-requested must enter the
	// protected queue and survive subsequent probation churn.
	q := NewTwoQ(0.25, 0.5)
	b := trace.NewBuilder()
	b.Add(0, 1) // probation
	for i := 10; i < 14; i++ {
		b.Add(0, trace.PageID(i)) // churn page 1 out of probation into the ghost
	}
	b.Add(0, 1) // ghost hit -> protected queue
	for i := 20; i < 23; i++ {
		b.Add(0, trace.PageID(i)) // probation churn only
	}
	b.Add(0, 1) // must hit: page 1 lives in the protected queue
	tr := b.MustBuild()
	res := run(t, tr, q, 4)
	if res.Hits < 1 {
		t.Errorf("hits = %d, protected page 1 was churned out", res.Hits)
	}
}

func TestTwoQNeverBelowBelady(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 8; trial++ {
		b := trace.NewBuilder()
		for i := 0; i < 300; i++ {
			b.Add(0, trace.PageID(rng.Intn(12)))
		}
		tr := b.MustBuild()
		k := 3 + rng.Intn(3)
		minM := run(t, tr, NewBelady(), k).TotalMisses()
		if got := run(t, tr, NewTwoQ(0, 0), k).TotalMisses(); got < minM {
			t.Errorf("trial %d: 2Q %d below MIN %d", trial, got, minM)
		}
	}
}

func TestHarmonicDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := trace.NewBuilder()
	for i := 0; i < 400; i++ {
		tn := rng.Intn(2)
		b.Add(trace.Tenant(tn), trace.PageID(tn*100+rng.Intn(10)))
	}
	tr := b.MustBuild()
	costs := []costfn.Func{costfn.Monomial{C: 1, Beta: 2}, costfn.Linear{W: 1}}
	a := run(t, tr, NewHarmonic(4, costs), 5)
	c := run(t, tr, NewHarmonic(4, costs), 5)
	if a.TotalMisses() != c.TotalMisses() {
		t.Errorf("same seed, different misses: %d vs %d", a.TotalMisses(), c.TotalMisses())
	}
}

func TestHarmonicProtectsExpensiveTenantInExpectation(t *testing.T) {
	// Tenant 0 has a far steeper marginal than tenant 1; across seeds,
	// harmonic must evict tenant 1's pages much more often.
	costs := []costfn.Func{costfn.Monomial{C: 10, Beta: 2}, costfn.Linear{W: 0.01}}
	rng := rand.New(rand.NewSource(3))
	b := trace.NewBuilder()
	for i := 0; i < 2000; i++ {
		tn := rng.Intn(2)
		b.Add(trace.Tenant(tn), trace.PageID(tn*1000+rng.Intn(30)))
	}
	tr := b.MustBuild()
	var ev0, ev1 int64
	for seed := int64(0); seed < 5; seed++ {
		res := run(t, tr, NewHarmonic(seed, costs), 20)
		ev0 += res.Evictions[0]
		ev1 += res.Evictions[1]
	}
	if ev0 >= ev1 {
		t.Errorf("steep tenant evicted as often as cheap one: %d vs %d", ev0, ev1)
	}
}
