package policy

import (
	"math/rand"

	"convexcache/internal/trace"
)

// Random evicts a uniformly random resident page. Seeded for deterministic
// experiments.
type Random struct {
	seed  int64
	rng   *rand.Rand
	pages []trace.PageID
	pos   map[trace.PageID]int
}

// NewRandom returns a Random policy with the given seed.
func NewRandom(seed int64) *Random {
	return &Random{
		seed: seed,
		rng:  rand.New(rand.NewSource(seed)),
		pos:  make(map[trace.PageID]int),
	}
}

// Name implements sim.Policy.
func (rd *Random) Name() string { return "random" }

// OnHit is a no-op.
func (rd *Random) OnHit(step int, r trace.Request) {}

// OnInsert tracks the resident page.
func (rd *Random) OnInsert(step int, r trace.Request) {
	rd.pos[r.Page] = len(rd.pages)
	rd.pages = append(rd.pages, r.Page)
}

// Victim picks a uniformly random resident page.
func (rd *Random) Victim(step int, r trace.Request) trace.PageID {
	return rd.pages[rd.rng.Intn(len(rd.pages))]
}

// OnEvict removes the page with a swap-delete.
func (rd *Random) OnEvict(step int, p trace.PageID) {
	i, ok := rd.pos[p]
	if !ok {
		return
	}
	last := len(rd.pages) - 1
	rd.pages[i] = rd.pages[last]
	rd.pos[rd.pages[i]] = i
	rd.pages = rd.pages[:last]
	delete(rd.pos, p)
}

// Reset restores the initial seeded state.
func (rd *Random) Reset() {
	rd.rng = rand.New(rand.NewSource(rd.seed))
	rd.pages = nil
	rd.pos = make(map[trace.PageID]int)
}

// Marking implements the deterministic marking algorithm: pages are marked
// on access; victims are chosen among unmarked pages (lowest id for
// determinism); when every resident page is marked a new phase begins and
// all marks are cleared.
type Marking struct {
	marked map[trace.PageID]bool
}

// NewMarking returns an empty Marking policy.
func NewMarking() *Marking {
	return &Marking{marked: make(map[trace.PageID]bool)}
}

// Name implements sim.Policy.
func (m *Marking) Name() string { return "marking" }

// OnHit marks the page.
func (m *Marking) OnHit(step int, r trace.Request) { m.marked[r.Page] = true }

// OnInsert marks the freshly inserted page.
func (m *Marking) OnInsert(step int, r trace.Request) { m.marked[r.Page] = true }

// Victim returns the lowest-id unmarked page, starting a new phase first if
// everything is marked.
func (m *Marking) Victim(step int, r trace.Request) trace.PageID {
	victim, ok := m.lowestUnmarked()
	if !ok {
		// Phase change: clear all marks, then pick again.
		for p := range m.marked {
			m.marked[p] = false
		}
		victim, _ = m.lowestUnmarked()
	}
	return victim
}

func (m *Marking) lowestUnmarked() (trace.PageID, bool) {
	var best trace.PageID
	found := false
	for p, marked := range m.marked {
		if marked {
			continue
		}
		if !found || p < best {
			best = p
			found = true
		}
	}
	return best, found
}

// OnEvict forgets the page.
func (m *Marking) OnEvict(step int, p trace.PageID) { delete(m.marked, p) }

// Reset implements sim.Policy.
func (m *Marking) Reset() { m.marked = make(map[trace.PageID]bool) }
