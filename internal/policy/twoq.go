package policy

import (
	"container/list"

	"convexcache/internal/trace"
)

// TwoQ is the simplified 2Q algorithm of Johnson & Shasha (VLDB 1994):
// first-time pages enter a FIFO probation queue (A1in); pages re-referenced
// after leaving probation (tracked by the A1out ghost queue) are promoted
// to the protected LRU main queue (Am). Evictions drain probation first.
// Kin and Kout are fractions of the cache the queues target.
type TwoQ struct {
	kin, kout float64

	a1in  *list.List // FIFO, front = oldest
	am    *list.List // LRU, front = MRU
	where map[trace.PageID]*twoqEntry
	a1out *list.List // ghost FIFO, front = oldest
	ghost map[trace.PageID]*list.Element

	resident int
}

type twoqEntry struct {
	list *list.List
	elem *list.Element
}

// NewTwoQ builds the policy; kin/kout are the probation and ghost fractions
// (defaults 0.25 and 0.5 when non-positive).
func NewTwoQ(kin, kout float64) *TwoQ {
	if kin <= 0 {
		kin = 0.25
	}
	if kout <= 0 {
		kout = 0.5
	}
	q := &TwoQ{kin: kin, kout: kout}
	q.Reset()
	return q
}

// Name implements sim.Policy.
func (q *TwoQ) Name() string { return "2q" }

// Reset implements sim.Policy.
func (q *TwoQ) Reset() {
	q.a1in = list.New()
	q.am = list.New()
	q.a1out = list.New()
	q.where = make(map[trace.PageID]*twoqEntry)
	q.ghost = make(map[trace.PageID]*list.Element)
	q.resident = 0
}

// OnHit promotes main-queue pages to MRU; probation pages stay put (2Q's
// "correlated reference" rule).
func (q *TwoQ) OnHit(step int, r trace.Request) {
	e, ok := q.where[r.Page]
	if !ok {
		return
	}
	if e.list == q.am {
		q.am.MoveToFront(e.elem)
	}
}

// OnInsert routes ghost-hits to the protected queue, others to probation.
func (q *TwoQ) OnInsert(step int, r trace.Request) {
	q.resident++
	if ge, ok := q.ghost[r.Page]; ok {
		q.a1out.Remove(ge)
		delete(q.ghost, r.Page)
		q.where[r.Page] = &twoqEntry{list: q.am, elem: q.am.PushFront(r.Page)}
		return
	}
	q.where[r.Page] = &twoqEntry{list: q.a1in, elem: q.a1in.PushBack(r.Page)}
}

// Victim drains probation while it exceeds its target share, else the
// protected LRU tail.
func (q *TwoQ) Victim(step int, r trace.Request) trace.PageID {
	targetIn := int(q.kin * float64(q.resident))
	if q.a1in.Len() > 0 && (q.a1in.Len() > targetIn || q.am.Len() == 0) {
		return q.a1in.Front().Value.(trace.PageID)
	}
	return q.am.Back().Value.(trace.PageID)
}

// OnEvict records probation evictions in the ghost queue.
func (q *TwoQ) OnEvict(step int, p trace.PageID) {
	e, ok := q.where[p]
	if !ok {
		return
	}
	fromProbation := e.list == q.a1in
	e.list.Remove(e.elem)
	delete(q.where, p)
	q.resident--
	if fromProbation {
		q.ghost[p] = q.a1out.PushBack(p)
		limit := int(q.kout*float64(q.resident)) + 1
		for q.a1out.Len() > limit {
			old := q.a1out.Front()
			delete(q.ghost, old.Value.(trace.PageID))
			q.a1out.Remove(old)
		}
	}
}
