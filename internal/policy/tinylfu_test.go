package policy

import (
	"math/rand"
	"testing"

	"convexcache/internal/trace"
)

func TestTinyLFUBasic(t *testing.T) {
	tr := seq(t, 1, 2, 3, 1, 2, 3)
	res := run(t, tr, NewTinyLFU(1024, 0), 3)
	if res.TotalMisses() != 3 {
		t.Errorf("misses = %d, want 3 (all fit)", res.TotalMisses())
	}
}

func TestTinyLFUScanResistance(t *testing.T) {
	// Hot set cycled between single-use scan pollution: the admission
	// filter must protect the hot pages better than plain LRU.
	b := trace.NewBuilder()
	scan := 1000
	for round := 0; round < 100; round++ {
		for h := 0; h < 4; h++ {
			b.Add(0, trace.PageID(h))
		}
		for s := 0; s < 6; s++ {
			scan++
			b.Add(0, trace.PageID(scan))
		}
	}
	tr := b.MustBuild()
	k := 8
	tiny := run(t, tr, NewTinyLFU(2048, 0), k)
	lru := run(t, tr, NewLRU(), k)
	if tiny.TotalMisses() >= lru.TotalMisses() {
		t.Errorf("tinylfu misses %d not below LRU %d under scan pollution",
			tiny.TotalMisses(), lru.TotalMisses())
	}
}

func TestTinyLFUNeverBelowBelady(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 8; trial++ {
		b := trace.NewBuilder()
		for i := 0; i < 300; i++ {
			b.Add(0, trace.PageID(rng.Intn(12)))
		}
		tr := b.MustBuild()
		k := 3 + rng.Intn(3)
		minMisses := run(t, tr, NewBelady(), k).TotalMisses()
		if got := run(t, tr, NewTinyLFU(1024, 256), k).TotalMisses(); got < minMisses {
			t.Errorf("trial %d: tinylfu %d below MIN %d", trial, got, minMisses)
		}
	}
}

func TestTinyLFUResetReproducible(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b := trace.NewBuilder()
	for i := 0; i < 400; i++ {
		b.Add(0, trace.PageID(rng.Intn(25)))
	}
	tr := b.MustBuild()
	p := NewTinyLFU(512, 128)
	first := run(t, tr, p, 6)
	p.Reset()
	second := run(t, tr, p, 6)
	if first.TotalMisses() != second.TotalMisses() {
		t.Errorf("not reproducible: %d vs %d", first.TotalMisses(), second.TotalMisses())
	}
}
