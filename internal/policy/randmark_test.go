package policy

import (
	"math/rand"
	"testing"

	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

func TestRandomMarkingDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	b := trace.NewBuilder()
	for i := 0; i < 600; i++ {
		b.Add(0, trace.PageID(rng.Intn(15)))
	}
	tr := b.MustBuild()
	a := run(t, tr, NewRandomMarking(3), 5)
	c := run(t, tr, NewRandomMarking(3), 5)
	if a.TotalMisses() != c.TotalMisses() {
		t.Errorf("same seed, different misses: %d vs %d", a.TotalMisses(), c.TotalMisses())
	}
	d := run(t, tr, NewRandomMarking(4), 5)
	_ = d // different seed may legitimately differ; just must complete
}

func TestRandomMarkingNeverEvictsMarked(t *testing.T) {
	// Within a phase, a freshly accessed (marked) page must not be chosen.
	// Construct: k=2, access 1,2 (both marked), then 3 -> phase reset;
	// after the reset both are unmarked, so either can go. Then hit the
	// survivor, insert 4: the survivor is marked and must stay.
	rm := NewRandomMarking(1)
	tr := seq(t, 1, 2, 3)
	var evicted trace.PageID = -1
	_, err := sim.Run(tr, rm, sim.Config{K: 2, Observer: func(ev sim.Event) {
		if ev.Evicted >= 0 {
			evicted = ev.Evicted
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if evicted != 1 && evicted != 2 {
		t.Fatalf("evicted %d, want 1 or 2", evicted)
	}
}

func TestRandomMarkingBoundedByBelady(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		b := trace.NewBuilder()
		for i := 0; i < 300; i++ {
			b.Add(0, trace.PageID(rng.Intn(12)))
		}
		tr := b.MustBuild()
		k := 3 + rng.Intn(3)
		min := run(t, tr, NewBelady(), k).TotalMisses()
		got := run(t, tr, NewRandomMarking(int64(trial)), k).TotalMisses()
		if got < min {
			t.Errorf("trial %d: random-marking misses %d below MIN %d", trial, got, min)
		}
	}
}

func TestRandomMarkingPhaseStructure(t *testing.T) {
	// A cyclic scan of k+1 pages forces a phase change per cycle; the run
	// must complete with miss count between MIN and T.
	b := trace.NewBuilder()
	for i := 0; i < 400; i++ {
		b.Add(0, trace.PageID(i%5))
	}
	tr := b.MustBuild()
	res := run(t, tr, NewRandomMarking(9), 4)
	if res.TotalMisses() < 5 || res.TotalMisses() > int64(tr.Len()) {
		t.Errorf("misses = %d out of range", res.TotalMisses())
	}
	// Randomized marking beats deterministic LRU on the cyclic scan in
	// expectation (LRU misses everything).
	lru := run(t, tr, NewLRU(), 4)
	if res.TotalMisses() >= lru.TotalMisses() {
		t.Errorf("random-marking %d not below LRU %d on cyclic scan", res.TotalMisses(), lru.TotalMisses())
	}
}
