package policy

import (
	"container/list"

	"convexcache/internal/trace"
)

// ARC is the Adaptive Replacement Cache of Megiddo & Modha (FAST 2003), a
// strong self-tuning cost-oblivious baseline: it balances a recency list
// (T1) against a frequency list (T2) using ghost lists (B1, B2) to adapt
// the target size p of T1. Included because any credible cache-policy
// comparison fields it; like LRU it ignores tenant costs, which is exactly
// what the paper's experiments expose.
type ARC struct {
	c int // capacity (set on first Victim; the engine owns the real bound)

	t1, t2, b1, b2 *list.List // fronts are MRU
	where          map[trace.PageID]*arcEntry
	p              float64 // adaptive target size of t1
}

type arcEntry struct {
	list *list.List
	elem *list.Element
}

// NewARC returns an empty ARC policy; capacity adapts to the engine's k on
// first eviction.
func NewARC() *ARC {
	a := &ARC{}
	a.Reset()
	return a
}

// Name implements sim.Policy.
func (a *ARC) Name() string { return "arc" }

// Reset implements sim.Policy.
func (a *ARC) Reset() {
	a.t1, a.t2, a.b1, a.b2 = list.New(), list.New(), list.New(), list.New()
	a.where = make(map[trace.PageID]*arcEntry)
	a.p = 0
	a.c = 0
}

func (a *ARC) moveTo(p trace.PageID, dst *list.List) {
	e := a.where[p]
	if e == nil {
		a.where[p] = &arcEntry{list: dst, elem: dst.PushFront(p)}
		return
	}
	e.list.Remove(e.elem)
	e.list = dst
	e.elem = dst.PushFront(p)
}

func (a *ARC) drop(p trace.PageID) {
	if e, ok := a.where[p]; ok {
		e.list.Remove(e.elem)
		delete(a.where, p)
	}
}

// trimGhost keeps the ghost lists within capacity.
func (a *ARC) trimGhost() {
	if a.c == 0 {
		return
	}
	for a.b1.Len() > a.c {
		back := a.b1.Back()
		a.drop(back.Value.(trace.PageID))
	}
	for a.b2.Len() > a.c {
		back := a.b2.Back()
		a.drop(back.Value.(trace.PageID))
	}
}

// OnHit promotes the page to the frequency list.
func (a *ARC) OnHit(step int, r trace.Request) {
	if e, ok := a.where[r.Page]; ok && (e.list == a.t1 || e.list == a.t2) {
		a.moveTo(r.Page, a.t2)
	}
}

// OnInsert places the page, adapting p on ghost hits.
func (a *ARC) OnInsert(step int, r trace.Request) {
	e, ok := a.where[r.Page]
	switch {
	case ok && e.list == a.b1:
		// Ghost hit in the recency history: grow the recency target.
		delta := 1.0
		if a.b1.Len() > 0 {
			delta = max(1, float64(a.b2.Len())/float64(a.b1.Len()))
		}
		a.p = min(float64(a.c), a.p+delta)
		a.moveTo(r.Page, a.t2)
	case ok && e.list == a.b2:
		// Ghost hit in the frequency history: shrink the recency target.
		delta := 1.0
		if a.b2.Len() > 0 {
			delta = max(1, float64(a.b1.Len())/float64(a.b2.Len()))
		}
		a.p = max(0, a.p-delta)
		a.moveTo(r.Page, a.t2)
	default:
		a.moveTo(r.Page, a.t1)
	}
	a.trimGhost()
}

// Victim implements the ARC REPLACE routine: evict from T1 when it exceeds
// the target p (or on a B2 ghost hit at the boundary), else from T2.
// Evicted pages move into the matching ghost list.
func (a *ARC) Victim(step int, r trace.Request) trace.PageID {
	resident := a.t1.Len() + a.t2.Len()
	if resident > a.c {
		a.c = resident // learn the engine's capacity
	}
	inB2 := false
	if e, ok := a.where[r.Page]; ok && e.list == a.b2 {
		inB2 = true
	}
	useT1 := a.t1.Len() > 0 &&
		(float64(a.t1.Len()) > a.p || (inB2 && float64(a.t1.Len()) == a.p))
	if !useT1 && a.t2.Len() == 0 {
		useT1 = true
	}
	if useT1 {
		return a.t1.Back().Value.(trace.PageID)
	}
	return a.t2.Back().Value.(trace.PageID)
}

// OnEvict moves the page into the matching ghost list.
func (a *ARC) OnEvict(step int, p trace.PageID) {
	e, ok := a.where[p]
	if !ok {
		return
	}
	if e.list == a.t1 {
		a.moveTo(p, a.b1)
	} else if e.list == a.t2 {
		a.moveTo(p, a.b2)
	}
	a.trimGhost()
}
