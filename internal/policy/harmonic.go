package policy

import (
	"math/rand"

	"convexcache/internal/costfn"
	"convexcache/internal/trace"
)

// Harmonic is the classical memoryless randomized algorithm for weighted
// caching (Raghavan & Snir): on eviction, a resident page is chosen with
// probability inversely proportional to its weight. With convex tenant
// costs the weight is the owner's current marginal miss cost, making this
// the natural randomized-memoryless counterpart of the paper's budget rule.
type Harmonic struct {
	seed int64
	rng  *rand.Rand
	fs   []costfn.Func

	pages  []trace.PageID
	pos    map[trace.PageID]int
	owner  map[trace.PageID]trace.Tenant
	misses map[trace.Tenant]float64
}

// NewHarmonic builds the policy with the tenants' cost functions (nil
// entries default to unit weight).
func NewHarmonic(seed int64, fs []costfn.Func) *Harmonic {
	h := &Harmonic{seed: seed, fs: fs}
	h.Reset()
	return h
}

// Name implements sim.Policy.
func (h *Harmonic) Name() string { return "harmonic" }

// Reset implements sim.Policy.
func (h *Harmonic) Reset() {
	h.rng = rand.New(rand.NewSource(h.seed))
	h.pages = nil
	h.pos = make(map[trace.PageID]int)
	h.owner = make(map[trace.PageID]trace.Tenant)
	h.misses = make(map[trace.Tenant]float64)
}

// OnHit is a no-op (memoryless).
func (h *Harmonic) OnHit(step int, r trace.Request) {}

// OnInsert tracks the resident page and the owner's miss count.
func (h *Harmonic) OnInsert(step int, r trace.Request) {
	h.pos[r.Page] = len(h.pages)
	h.pages = append(h.pages, r.Page)
	h.owner[r.Page] = r.Tenant
	h.misses[r.Tenant]++
}

func (h *Harmonic) weight(t trace.Tenant) float64 {
	if int(t) >= len(h.fs) || h.fs[t] == nil {
		return 1
	}
	w := costfn.DiscreteDeriv(h.fs[t], h.misses[t])
	if w <= 0 {
		w = 1e-9
	}
	return w
}

// Victim samples a resident page with probability proportional to 1/weight.
func (h *Harmonic) Victim(step int, r trace.Request) trace.PageID {
	total := 0.0
	for _, p := range h.pages {
		total += 1 / h.weight(h.owner[p])
	}
	u := h.rng.Float64() * total
	for _, p := range h.pages {
		u -= 1 / h.weight(h.owner[p])
		if u <= 0 {
			return p
		}
	}
	return h.pages[len(h.pages)-1]
}

// OnEvict removes the page with a swap-delete.
func (h *Harmonic) OnEvict(step int, p trace.PageID) {
	i, ok := h.pos[p]
	if !ok {
		return
	}
	last := len(h.pages) - 1
	h.pages[i] = h.pages[last]
	h.pos[h.pages[i]] = i
	h.pages = h.pages[:last]
	delete(h.pos, p)
	delete(h.owner, p)
}
