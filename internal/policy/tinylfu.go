package policy

import (
	"convexcache/internal/sketch"
	"convexcache/internal/trace"
)

// TinyLFU is an admission-filtered LRU in the spirit of Einziger, Friedman
// & Manes (TinyLFU, 2017): a count-min sketch with aging estimates access
// frequency; on an eviction decision, the frequency of the incoming page is
// compared with the LRU victim's, and when the victim looks hotter the
// *incoming* page is effectively sacrificed (inserted, then evicted at the
// next pressure) by marking it as the preferred victim. Within the engine's
// strict demand-caching contract (the requested page must be inserted),
// this is realized by victim redirection: if the incoming page's estimated
// frequency does not beat the LRU candidate's, the most recently admitted
// low-frequency page is evicted instead of the LRU one.
//
// A modern cost-oblivious baseline: very strong on skewed IRM traffic,
// still blind to tenant SLAs.
type TinyLFU struct {
	lru    *LRU
	sketch *sketch.CountMin
	// lastAdmitted tracks the most recent insert that lost its frequency
	// duel; it becomes the next preferred victim.
	sacrifice    trace.PageID
	hasSacrifice bool
}

// NewTinyLFU builds the policy; sketchWidth controls estimator accuracy and
// window its aging period.
func NewTinyLFU(sketchWidth int, window int64) *TinyLFU {
	cms, err := sketch.NewCountMin(4, sketchWidth, window)
	if err != nil {
		panic(err) // parameters are compile-time constants at call sites
	}
	return &TinyLFU{lru: NewLRU(), sketch: cms}
}

// Name implements sim.Policy.
func (t *TinyLFU) Name() string { return "tinylfu" }

// Reset implements sim.Policy.
func (t *TinyLFU) Reset() {
	t.lru.Reset()
	t.sketch.Reset()
	t.hasSacrifice = false
}

// OnHit records the access.
func (t *TinyLFU) OnHit(step int, r trace.Request) {
	t.sketch.Add(uint64(r.Page))
	t.lru.OnHit(step, r)
	if t.hasSacrifice && t.sacrifice == r.Page {
		// The page proved itself; stop sacrificing it.
		t.hasSacrifice = false
	}
}

// OnInsert records the access and admits the page.
func (t *TinyLFU) OnInsert(step int, r trace.Request) {
	t.sketch.Add(uint64(r.Page))
	t.lru.OnInsert(step, r)
}

// Victim duels the incoming page against the LRU candidate.
func (t *TinyLFU) Victim(step int, r trace.Request) trace.PageID {
	if t.hasSacrifice {
		p := t.sacrifice
		t.hasSacrifice = false
		return p
	}
	candidate := t.lru.Victim(step, r)
	if t.sketch.Estimate(uint64(r.Page)) >= t.sketch.Estimate(uint64(candidate)) {
		return candidate
	}
	// The victim looks hotter than the newcomer: evict the candidate
	// anyway (the engine must make room) but mark the newcomer as the next
	// sacrifice so the hot working set is disturbed only briefly.
	t.sacrifice = r.Page
	t.hasSacrifice = true
	return candidate
}

// OnEvict forwards to the recency structure.
func (t *TinyLFU) OnEvict(step int, p trace.PageID) {
	t.lru.OnEvict(step, p)
	if t.hasSacrifice && t.sacrifice == p {
		t.hasSacrifice = false
	}
}
