// Package policy implements the classical eviction baselines the paper
// positions itself against (Section 1.1 and 1.3): LRU, FIFO, LFU, Random,
// Marking, LRU-K (O'Neil et al. 1993), Young's weighted-caching greedy-dual
// rule, static partitioning, and Belady's offline MIN. All satisfy
// sim.Policy; Belady additionally satisfies sim.OfflinePolicy.
package policy

import (
	"container/list"

	"convexcache/internal/trace"
)

// LRU evicts the least-recently-used page; Sleator & Tarjan (1985) proved it
// k-competitive for the classical (single user, unit cost) problem.
type LRU struct {
	order *list.List // front = most recent
	elem  map[trace.PageID]*list.Element
}

// NewLRU returns an empty LRU policy.
func NewLRU() *LRU {
	return &LRU{order: list.New(), elem: make(map[trace.PageID]*list.Element)}
}

// Name implements sim.Policy.
func (l *LRU) Name() string { return "lru" }

// OnHit moves the page to the most-recent position.
func (l *LRU) OnHit(step int, r trace.Request) {
	if e, ok := l.elem[r.Page]; ok {
		l.order.MoveToFront(e)
	}
}

// OnInsert records the page as most recent.
func (l *LRU) OnInsert(step int, r trace.Request) {
	l.elem[r.Page] = l.order.PushFront(r.Page)
}

// Victim returns the least recently used page.
func (l *LRU) Victim(step int, r trace.Request) trace.PageID {
	return l.order.Back().Value.(trace.PageID)
}

// OnEvict removes the page from the recency list.
func (l *LRU) OnEvict(step int, p trace.PageID) {
	if e, ok := l.elem[p]; ok {
		l.order.Remove(e)
		delete(l.elem, p)
	}
}

// Reset implements sim.Policy.
func (l *LRU) Reset() {
	l.order.Init()
	l.elem = make(map[trace.PageID]*list.Element)
}

// FIFO evicts the page resident longest, ignoring hits.
type FIFO struct {
	order *list.List // front = oldest
	elem  map[trace.PageID]*list.Element
}

// NewFIFO returns an empty FIFO policy.
func NewFIFO() *FIFO {
	return &FIFO{order: list.New(), elem: make(map[trace.PageID]*list.Element)}
}

// Name implements sim.Policy.
func (f *FIFO) Name() string { return "fifo" }

// OnHit is a no-op: FIFO ignores recency.
func (f *FIFO) OnHit(step int, r trace.Request) {}

// OnInsert appends the page to the queue.
func (f *FIFO) OnInsert(step int, r trace.Request) {
	f.elem[r.Page] = f.order.PushBack(r.Page)
}

// Victim returns the oldest resident page.
func (f *FIFO) Victim(step int, r trace.Request) trace.PageID {
	return f.order.Front().Value.(trace.PageID)
}

// OnEvict removes the page from the queue.
func (f *FIFO) OnEvict(step int, p trace.PageID) {
	if e, ok := f.elem[p]; ok {
		f.order.Remove(e)
		delete(f.elem, p)
	}
}

// Reset implements sim.Policy.
func (f *FIFO) Reset() {
	f.order.Init()
	f.elem = make(map[trace.PageID]*list.Element)
}
