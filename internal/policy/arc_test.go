package policy

import (
	"math/rand"
	"testing"

	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

func TestARCBasicCaching(t *testing.T) {
	// Fits-in-cache workload: only cold misses.
	tr := seq(t, 1, 2, 3, 1, 2, 3, 1, 2, 3)
	res := run(t, tr, NewARC(), 4)
	if res.TotalMisses() != 3 {
		t.Errorf("misses = %d, want 3 (cold only)", res.TotalMisses())
	}
}

func TestARCScanResistance(t *testing.T) {
	// A hot set re-referenced between long single-use scans: ARC must keep
	// the hot set better than LRU does.
	b := trace.NewBuilder()
	scanPage := 1000
	for round := 0; round < 60; round++ {
		for h := 0; h < 4; h++ { // hot set (twice to build frequency)
			b.Add(0, trace.PageID(h))
		}
		for s := 0; s < 8; s++ { // single-use scan pages
			scanPage++
			b.Add(0, trace.PageID(scanPage))
		}
	}
	tr := b.MustBuild()
	k := 8
	arc := run(t, tr, NewARC(), k)
	lru := run(t, tr, NewLRU(), k)
	if arc.TotalMisses() >= lru.TotalMisses() {
		t.Errorf("ARC misses %d not below LRU %d on scan-polluted workload",
			arc.TotalMisses(), lru.TotalMisses())
	}
}

func TestARCNeverBelowBelady(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		b := trace.NewBuilder()
		for i := 0; i < 400; i++ {
			b.Add(0, trace.PageID(rng.Intn(14)))
		}
		tr := b.MustBuild()
		k := 3 + rng.Intn(4)
		minMisses := run(t, tr, NewBelady(), k).TotalMisses()
		got := run(t, tr, NewARC(), k).TotalMisses()
		if got < minMisses {
			t.Errorf("trial %d: ARC misses %d below MIN %d", trial, got, minMisses)
		}
	}
}

func TestARCResetReproducible(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := trace.NewBuilder()
	for i := 0; i < 500; i++ {
		tn := rng.Intn(2)
		b.Add(trace.Tenant(tn), trace.PageID(tn*100+rng.Intn(12)))
	}
	tr := b.MustBuild()
	a := NewARC()
	first := run(t, tr, a, 5)
	a.Reset()
	second := run(t, tr, a, 5)
	if first.TotalMisses() != second.TotalMisses() {
		t.Errorf("not reproducible: %d vs %d", first.TotalMisses(), second.TotalMisses())
	}
}

func TestARCGhostListsBounded(t *testing.T) {
	// Long single-use stream: ghost lists must not grow without bound.
	a := NewARC()
	b := trace.NewBuilder()
	for i := 0; i < 5000; i++ {
		b.Add(0, trace.PageID(i))
	}
	tr := b.MustBuild()
	if _, err := sim.Run(tr, a, sim.Config{K: 16}); err != nil {
		t.Fatal(err)
	}
	if a.b1.Len() > 16 || a.b2.Len() > 16 {
		t.Errorf("ghost lists grew beyond capacity: b1=%d b2=%d", a.b1.Len(), a.b2.Len())
	}
	// Total tracked entries bounded by residents + ghosts.
	if len(a.where) > 16*3 {
		t.Errorf("tracked entries %d unbounded", len(a.where))
	}
}
