package policy

import (
	"convexcache/internal/trace"
)

// LRUK is the LRU-K algorithm of O'Neil, O'Neil & Weikum (SIGMOD 1993): the
// victim is the page whose K-th most recent reference is oldest. Pages with
// fewer than K references are preferred victims (their backward K-distance
// is infinite), ordered among themselves by least recent use.
type LRUK struct {
	k    int
	hist map[trace.PageID][]int // most recent first, capped at k entries
}

// NewLRUK returns an LRU-K policy; k must be >= 1 (k=1 degenerates to LRU).
func NewLRUK(k int) *LRUK {
	if k < 1 {
		k = 1
	}
	return &LRUK{k: k, hist: make(map[trace.PageID][]int)}
}

// Name implements sim.Policy.
func (l *LRUK) Name() string {
	switch l.k {
	case 2:
		return "lru-2"
	default:
		return "lru-k"
	}
}

func (l *LRUK) touch(step int, p trace.PageID) {
	h := l.hist[p]
	// Prepend, keep at most k timestamps.
	h = append(h, 0)
	copy(h[1:], h)
	h[0] = step
	if len(h) > l.k {
		h = h[:l.k]
	}
	l.hist[p] = h
}

// OnHit records the reference.
func (l *LRUK) OnHit(step int, r trace.Request) { l.touch(step, r.Page) }

// OnInsert starts the page's reference history.
func (l *LRUK) OnInsert(step int, r trace.Request) { l.touch(step, r.Page) }

// Victim returns the page with the oldest K-th most recent reference.
func (l *LRUK) Victim(step int, r trace.Request) trace.PageID {
	var best trace.PageID
	bestKDist := -1 // K-th reference step; -1 means "infinite distance"
	bestLast := 1 << 62
	found := false
	infFound := false
	for p, h := range l.hist {
		if len(h) < l.k {
			// Infinite backward K-distance: preferred victim; among these
			// evict the least recently used.
			if !infFound || h[0] < bestLast {
				best, bestLast, infFound, found = p, h[0], true, true
			}
			continue
		}
		if infFound {
			continue
		}
		kth := h[l.k-1]
		if !found || kth < bestKDist || (kth == bestKDist && h[0] < bestLast) {
			best, bestKDist, bestLast, found = p, kth, h[0], true
		}
	}
	return best
}

// OnEvict drops the page's history (no retained information policy
// variant).
func (l *LRUK) OnEvict(step int, p trace.PageID) { delete(l.hist, p) }

// Reset implements sim.Policy.
func (l *LRUK) Reset() { l.hist = make(map[trace.PageID][]int) }
