package policy

import (
	"convexcache/internal/costfn"
	"convexcache/internal/trace"
)

// Lookahead interpolates between online and offline: it sees only the next
// L future requests. Within the window it behaves like the cost-aware
// Belady heuristic (evict the page minimizing marginal-miss-cost divided by
// distance to next use); pages not referenced within the window count as
// infinitely far. L = 0 degenerates to cost-oblivious... nothing (no
// information): ties resolve to the lowest-marginal tenant's page. As L
// grows past the trace length it coincides with CostAwareBelady. Used by
// experiment E18 to price the value of future information.
type Lookahead struct {
	l  int
	fs []costfn.Func

	ix       *trace.Indexed
	nextPtr  map[trace.PageID]int
	resident map[trace.PageID]bool
	owner    map[trace.PageID]trace.Tenant
	misses   map[trace.Tenant]float64
}

// NewLookahead builds the policy with window L >= 0 and the tenants' cost
// functions.
func NewLookahead(l int, fs []costfn.Func) *Lookahead {
	p := &Lookahead{l: l, fs: fs}
	p.Reset()
	return p
}

// Name implements sim.Policy.
func (p *Lookahead) Name() string { return "lookahead" }

// Reset implements sim.Policy.
func (p *Lookahead) Reset() {
	p.nextPtr = make(map[trace.PageID]int)
	p.resident = make(map[trace.PageID]bool)
	p.owner = make(map[trace.PageID]trace.Tenant)
	p.misses = make(map[trace.Tenant]float64)
}

// Prepare implements sim.OfflinePolicy (the engine supplies the future; the
// policy truncates it to the window).
func (p *Lookahead) Prepare(ix *trace.Indexed) { p.ix = ix }

// OnHit is a no-op.
func (p *Lookahead) OnHit(step int, r trace.Request) {}

// OnInsert tracks residency, ownership and misses.
func (p *Lookahead) OnInsert(step int, r trace.Request) {
	p.resident[r.Page] = true
	p.owner[r.Page] = r.Tenant
	p.misses[r.Tenant]++
}

// nextUseWithin returns the distance (in steps) to q's next request if it
// falls within the lookahead window, else -1.
func (p *Lookahead) nextUseWithin(q trace.PageID, step int) int {
	times := p.ix.RequestTimes[q]
	i := p.nextPtr[q]
	for i < len(times) && times[i] <= step {
		i++
	}
	p.nextPtr[q] = i
	if i == len(times) {
		return -1
	}
	dist := times[i] - step
	if dist > p.l {
		return -1
	}
	return dist
}

func (p *Lookahead) marginal(t trace.Tenant) float64 {
	if int(t) >= len(p.fs) || p.fs[t] == nil {
		return 1
	}
	return costfn.DiscreteDeriv(p.fs[t], p.misses[t])
}

// Victim evicts, among pages unseen in the window, the one whose owner has
// the smallest marginal cost; if every resident page is referenced within
// the window, it minimizes marginal/distance.
func (p *Lookahead) Victim(step int, r trace.Request) trace.PageID {
	var bestOut trace.PageID
	bestOutScore := 0.0
	foundOut := false
	var bestIn trace.PageID
	bestInScore := 0.0
	foundIn := false
	for q := range p.resident {
		dist := p.nextUseWithin(q, step)
		m := p.marginal(p.owner[q])
		if dist < 0 {
			if !foundOut || m < bestOutScore || (m == bestOutScore && q < bestOut) {
				bestOut, bestOutScore, foundOut = q, m, true
			}
			continue
		}
		score := m / float64(dist)
		if !foundIn || score < bestInScore || (score == bestInScore && q < bestIn) {
			bestIn, bestInScore, foundIn = q, score, true
		}
	}
	if foundOut {
		return bestOut
	}
	return bestIn
}

// OnEvict removes the page.
func (p *Lookahead) OnEvict(step int, q trace.PageID) {
	delete(p.resident, q)
	delete(p.owner, q)
}
