package policy

import (
	"math/rand"
	"testing"

	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

func TestClockSecondChance(t *testing.T) {
	// k=3: fill 1,2,3; hit 2; request 4 sweeps and clears all bits,
	// evicting the first swept page. Then hit 2 again (bit set), and
	// request 5 must give 2 its second chance and evict 3 (bit cleared by
	// the earlier sweep, not referenced since).
	tr := seq(t, 1, 2, 3, 2, 4, 2, 5)
	var evictions []trace.PageID
	_, err := sim.Run(tr, NewClock(), sim.Config{K: 3, Observer: func(ev sim.Event) {
		if ev.Evicted >= 0 {
			evictions = append(evictions, ev.Evicted)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(evictions) != 2 {
		t.Fatalf("evictions = %v", evictions)
	}
	if evictions[1] == 2 {
		t.Errorf("second eviction took the re-referenced page 2 (evictions %v)", evictions)
	}
	if evictions[1] != 3 {
		t.Errorf("second eviction = %d, want the unreferenced page 3", evictions[1])
	}
}

func TestClockMatchesLRUMissCountApproximately(t *testing.T) {
	// CLOCK approximates LRU: on random traces their miss counts must stay
	// within 20% of each other.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		b := trace.NewBuilder()
		for i := 0; i < 600; i++ {
			b.Add(0, trace.PageID(rng.Intn(20)))
		}
		tr := b.MustBuild()
		k := 4 + rng.Intn(5)
		clock := run(t, tr, NewClock(), k).TotalMisses()
		lru := run(t, tr, NewLRU(), k).TotalMisses()
		if float64(clock) > 1.2*float64(lru) || float64(clock) < 0.8*float64(lru) {
			t.Errorf("trial %d k=%d: clock %d vs lru %d diverge", trial, k, clock, lru)
		}
	}
}

func TestClockNeverBelowBelady(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 8; trial++ {
		b := trace.NewBuilder()
		for i := 0; i < 300; i++ {
			b.Add(0, trace.PageID(rng.Intn(12)))
		}
		tr := b.MustBuild()
		k := 3 + rng.Intn(3)
		minMisses := run(t, tr, NewBelady(), k).TotalMisses()
		if got := run(t, tr, NewClock(), k).TotalMisses(); got < minMisses {
			t.Errorf("trial %d: clock %d below MIN %d", trial, got, minMisses)
		}
	}
}

func TestClockSingleFrame(t *testing.T) {
	tr := seq(t, 1, 2, 1, 2)
	res := run(t, tr, NewClock(), 1)
	if res.TotalMisses() != 4 {
		t.Errorf("misses = %d, want 4 (thrash at k=1)", res.TotalMisses())
	}
}

func TestClockResetReproducible(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	b := trace.NewBuilder()
	for i := 0; i < 400; i++ {
		b.Add(0, trace.PageID(rng.Intn(15)))
	}
	tr := b.MustBuild()
	c := NewClock()
	first := run(t, tr, c, 5)
	c.Reset()
	second := run(t, tr, c, 5)
	if first.TotalMisses() != second.TotalMisses() {
		t.Errorf("not reproducible")
	}
	// And usable through the engine with multi-tenant traces.
	b2 := trace.NewBuilder()
	for i := 0; i < 200; i++ {
		tn := rng.Intn(2)
		b2.Add(trace.Tenant(tn), trace.PageID(tn*50+rng.Intn(9)))
	}
	if _, err := sim.Run(b2.MustBuild(), NewClock(), sim.Config{K: 4}); err != nil {
		t.Fatal(err)
	}
}
