// Package lp is a small dense linear programming solver (two-phase primal
// simplex with Bland's rule) used to compute exact fractional optima of the
// paper's convex program when the cost functions are linear — the weighted
// caching LP of Young (1994) and Bansal-Buchbinder-Naor (2012) that Section
// 2.1 builds on. It certifies the quality of the subgradient dual bounds in
// internal/cp.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is a constraint sense.
type Relation int

// Constraint senses.
const (
	LE Relation = iota // <=
	GE                 // >=
	EQ                 // =
)

// Constraint is one linear row: coefficients over the structural variables,
// a sense, and a right-hand side.
type Constraint struct {
	// Coef[j] multiplies variable j; missing tail entries are zero.
	Coef []float64
	// Rel is the row sense.
	Rel Relation
	// RHS is the right-hand side.
	RHS float64
}

// Problem is min C.x subject to the constraints and x >= 0.
// Upper bounds (x <= u) must be added as explicit LE rows.
type Problem struct {
	// C is the objective (minimization).
	C []float64
	// Rows are the constraints.
	Rows []Constraint
}

// Status reports the solver outcome.
type Status int

// Solver outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return "unknown"
	}
}

// Solution holds the solver result.
type Solution struct {
	// Status is the outcome; X and Objective are meaningful only when
	// Optimal.
	Status Status
	// X is the optimal structural assignment.
	X []float64
	// Objective is C.X.
	Objective float64
	// Pivots counts simplex pivots across both phases.
	Pivots int
}

const eps = 1e-9

// Solve runs two-phase primal simplex. The problem must have at least one
// variable; rows may be empty (the optimum is then x = 0 for c >= 0 or
// unbounded).
func Solve(p Problem) (Solution, error) {
	n := len(p.C)
	if n == 0 {
		return Solution{}, errors.New("lp: no variables")
	}
	for _, row := range p.Rows {
		if len(row.Coef) > n {
			return Solution{}, fmt.Errorf("lp: row has %d coefficients, want <= %d", len(row.Coef), n)
		}
	}
	m := len(p.Rows)
	// Build the standard-form tableau: slack/surplus per inequality, then
	// artificials where needed. Normalize RHS >= 0 first.
	type rowSpec struct {
		coef []float64
		rhs  float64
		rel  Relation
	}
	rows := make([]rowSpec, m)
	for i, r := range p.Rows {
		coef := make([]float64, n)
		copy(coef, r.Coef)
		rhs := r.RHS
		rel := r.Rel
		if rhs < 0 {
			for j := range coef {
				coef[j] = -coef[j]
			}
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		rows[i] = rowSpec{coef: coef, rhs: rhs, rel: rel}
	}
	// Column layout: structural [0,n), slack/surplus [n, n+s), artificial
	// [n+s, n+s+a).
	slackCol := make([]int, m)
	artCol := make([]int, m)
	cols := n
	for i, r := range rows {
		slackCol[i] = -1
		if r.rel == LE || r.rel == GE {
			slackCol[i] = cols
			cols++
		}
	}
	artStart := cols
	for i, r := range rows {
		artCol[i] = -1
		needArt := r.rel == EQ || r.rel == GE
		if r.rel == LE && r.rhs < eps {
			// Slack basis works even at zero RHS.
			needArt = false
		}
		if r.rel == LE {
			needArt = false
		}
		if needArt {
			artCol[i] = cols
			cols++
		}
	}
	// Tableau: m rows x (cols + 1); last column is RHS.
	tab := make([][]float64, m)
	basis := make([]int, m)
	for i, r := range rows {
		tab[i] = make([]float64, cols+1)
		copy(tab[i], r.coef)
		tab[i][cols] = r.rhs
		switch r.rel {
		case LE:
			tab[i][slackCol[i]] = 1
			basis[i] = slackCol[i]
		case GE:
			tab[i][slackCol[i]] = -1
			tab[i][artCol[i]] = 1
			basis[i] = artCol[i]
		case EQ:
			tab[i][artCol[i]] = 1
			basis[i] = artCol[i]
		}
	}
	sol := Solution{}
	// Phase 1: minimize sum of artificials (skip when none).
	if cols > artStart {
		phase1 := make([]float64, cols)
		for j := artStart; j < cols; j++ {
			phase1[j] = 1
		}
		status, pivots := simplex(tab, basis, phase1, cols)
		sol.Pivots += pivots
		if status == Unbounded {
			return Solution{}, errors.New("lp: phase 1 unbounded (internal error)")
		}
		// Infeasible if any artificial remains positive.
		objective := 0.0
		for i, b := range basis {
			if b >= artStart {
				objective += tab[i][cols]
			}
		}
		if objective > 1e-7 {
			sol.Status = Infeasible
			return sol, nil
		}
		// Drive remaining (zero-valued) artificials out of the basis.
		for i, b := range basis {
			if b < artStart {
				continue
			}
			pivoted := false
			for j := 0; j < artStart; j++ {
				if math.Abs(tab[i][j]) > eps {
					pivot(tab, basis, i, j, cols)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row; leave the artificial basic at zero and
				// neutralize the row.
				_ = i
			}
		}
	}
	// Phase 2: original objective, artificial columns frozen at zero.
	phase2 := make([]float64, cols)
	copy(phase2, p.C)
	status, pivots := simplexRestricted(tab, basis, phase2, cols, artStart)
	sol.Pivots += pivots
	if status == Unbounded {
		sol.Status = Unbounded
		return sol, nil
	}
	sol.Status = Optimal
	sol.X = make([]float64, n)
	for i, b := range basis {
		if b < n {
			sol.X[b] = tab[i][cols]
		}
	}
	for j, x := range sol.X {
		sol.Objective += p.C[j] * x
	}
	return sol, nil
}

// simplex runs primal simplex to optimality over all columns.
func simplex(tab [][]float64, basis []int, c []float64, cols int) (Status, int) {
	return simplexRestricted(tab, basis, c, cols, cols)
}

// simplexRestricted runs primal simplex allowing entering columns only in
// [0, allowed). Bland's rule guarantees termination.
func simplexRestricted(tab [][]float64, basis []int, c []float64, cols, allowed int) (Status, int) {
	m := len(tab)
	pivots := 0
	// Reduced costs computed via the basic solution's multipliers each
	// iteration (dense, fine for our sizes).
	for iter := 0; iter < 50000; iter++ {
		// Compute reduced cost per column: c_j - c_B . B^-1 A_j. With the
		// tableau kept in canonical form, the basic columns are unit
		// vectors, so reduced cost r_j = c_j - sum_i c_basis[i] * tab[i][j].
		entering := -1
		for j := 0; j < allowed; j++ {
			rj := c[j]
			for i := 0; i < m; i++ {
				rj -= c[basis[i]] * tab[i][j]
			}
			if rj < -eps {
				entering = j // Bland: first improving column
				break
			}
		}
		if entering == -1 {
			return Optimal, pivots
		}
		// Ratio test with Bland tie-break on the smallest basis index.
		leaving := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if tab[i][entering] > eps {
				ratio := tab[i][cols] / tab[i][entering]
				if ratio < best-eps || (ratio < best+eps && (leaving == -1 || basis[i] < basis[leaving])) {
					best = ratio
					leaving = i
				}
			}
		}
		if leaving == -1 {
			return Unbounded, pivots
		}
		pivot(tab, basis, leaving, entering, cols)
		pivots++
	}
	return Unbounded, pivots // iteration cap: treat as failure
}

// pivot performs a Gauss-Jordan pivot on (row, col) and updates the basis.
func pivot(tab [][]float64, basis []int, row, col, cols int) {
	pv := tab[row][col]
	for j := 0; j <= cols; j++ {
		tab[row][j] /= pv
	}
	for i := range tab {
		if i == row {
			continue
		}
		factor := tab[i][col]
		if factor == 0 {
			continue
		}
		for j := 0; j <= cols; j++ {
			tab[i][j] -= factor * tab[row][j]
		}
	}
	basis[row] = col
}
