package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, p Problem) Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	return sol
}

func TestSimpleMinimization(t *testing.T) {
	// min x + y s.t. x + y >= 2, x >= 0, y >= 0 -> objective 2.
	sol := solveOK(t, Problem{
		C:    []float64{1, 1},
		Rows: []Constraint{{Coef: []float64{1, 1}, Rel: GE, RHS: 2}},
	})
	if math.Abs(sol.Objective-2) > 1e-7 {
		t.Errorf("objective = %g, want 2", sol.Objective)
	}
}

func TestMaximizationViaNegation(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (classic; opt 36).
	sol := solveOK(t, Problem{
		C: []float64{-3, -5},
		Rows: []Constraint{
			{Coef: []float64{1, 0}, Rel: LE, RHS: 4},
			{Coef: []float64{0, 2}, Rel: LE, RHS: 12},
			{Coef: []float64{3, 2}, Rel: LE, RHS: 18},
		},
	})
	if math.Abs(sol.Objective+36) > 1e-7 {
		t.Errorf("objective = %g, want -36", sol.Objective)
	}
	if math.Abs(sol.X[0]-2) > 1e-7 || math.Abs(sol.X[1]-6) > 1e-7 {
		t.Errorf("x = %v, want [2 6]", sol.X)
	}
}

func TestEqualityConstraints(t *testing.T) {
	// min 2x + 3y s.t. x + y = 10, x - y = 2 -> x=6, y=4, obj 24.
	sol := solveOK(t, Problem{
		C: []float64{2, 3},
		Rows: []Constraint{
			{Coef: []float64{1, 1}, Rel: EQ, RHS: 10},
			{Coef: []float64{1, -1}, Rel: EQ, RHS: 2},
		},
	})
	if math.Abs(sol.Objective-24) > 1e-7 {
		t.Errorf("objective = %g, want 24", sol.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	// x >= 5 and x <= 3.
	sol, err := Solve(Problem{
		C: []float64{1},
		Rows: []Constraint{
			{Coef: []float64{1}, Rel: GE, RHS: 5},
			{Coef: []float64{1}, Rel: LE, RHS: 3},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x with only x >= 1.
	sol, err := Solve(Problem{
		C:    []float64{-1},
		Rows: []Constraint{{Coef: []float64{1}, Rel: GE, RHS: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// -x <= -3 is x >= 3.
	sol := solveOK(t, Problem{
		C:    []float64{1},
		Rows: []Constraint{{Coef: []float64{-1}, Rel: LE, RHS: -3}},
	})
	if math.Abs(sol.Objective-3) > 1e-7 {
		t.Errorf("objective = %g, want 3", sol.Objective)
	}
}

func TestNoRows(t *testing.T) {
	sol := solveOK(t, Problem{C: []float64{2, 5}})
	if sol.Objective != 0 {
		t.Errorf("objective = %g, want 0", sol.Objective)
	}
	if _, err := Solve(Problem{}); err == nil {
		t.Error("no variables accepted")
	}
	if _, err := Solve(Problem{C: []float64{1}, Rows: []Constraint{{Coef: []float64{1, 2}, Rel: LE, RHS: 1}}}); err == nil {
		t.Error("over-long row accepted")
	}
}

func TestDegenerateDoesNotCycle(t *testing.T) {
	// Beale's classic cycling example (cycles under naive Dantzig rule);
	// Bland's rule must terminate at objective -0.05.
	sol := solveOK(t, Problem{
		C: []float64{-0.75, 150, -0.02, 6},
		Rows: []Constraint{
			{Coef: []float64{0.25, -60, -0.04, 9}, Rel: LE, RHS: 0},
			{Coef: []float64{0.5, -90, -0.02, 3}, Rel: LE, RHS: 0},
			{Coef: []float64{0, 0, 1, 0}, Rel: LE, RHS: 1},
		},
	})
	if math.Abs(sol.Objective+0.05) > 1e-6 {
		t.Errorf("objective = %g, want -0.05", sol.Objective)
	}
}

// bruteForce2D checks a 2-variable LP by scanning constraint intersections.
func bruteForce2D(p Problem) (float64, bool) {
	feasible := func(x, y float64) bool {
		if x < -1e-9 || y < -1e-9 {
			return false
		}
		for _, r := range p.Rows {
			v := 0.0
			if len(r.Coef) > 0 {
				v += r.Coef[0] * x
			}
			if len(r.Coef) > 1 {
				v += r.Coef[1] * y
			}
			switch r.Rel {
			case LE:
				if v > r.RHS+1e-7 {
					return false
				}
			case GE:
				if v < r.RHS-1e-7 {
					return false
				}
			case EQ:
				if math.Abs(v-r.RHS) > 1e-7 {
					return false
				}
			}
		}
		return true
	}
	// Candidate vertices: pairwise row intersections + axis intersections.
	type line struct{ a, b, c float64 } // a x + b y = c
	var lines []line
	for _, r := range p.Rows {
		a, b := 0.0, 0.0
		if len(r.Coef) > 0 {
			a = r.Coef[0]
		}
		if len(r.Coef) > 1 {
			b = r.Coef[1]
		}
		lines = append(lines, line{a, b, r.RHS})
	}
	lines = append(lines, line{1, 0, 0}, line{0, 1, 0})
	best := math.Inf(1)
	found := false
	for i := 0; i < len(lines); i++ {
		for j := i + 1; j < len(lines); j++ {
			d := lines[i].a*lines[j].b - lines[j].a*lines[i].b
			if math.Abs(d) < 1e-12 {
				continue
			}
			x := (lines[i].c*lines[j].b - lines[j].c*lines[i].b) / d
			y := (lines[i].a*lines[j].c - lines[j].a*lines[i].c) / d
			if feasible(x, y) {
				obj := p.C[0]*x + p.C[1]*y
				if obj < best {
					best = obj
					found = true
				}
			}
		}
	}
	return best, found
}

func TestRandomLPsAgainstVertexEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		p := Problem{C: []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2}}
		rows := 2 + rng.Intn(4)
		for r := 0; r < rows; r++ {
			p.Rows = append(p.Rows, Constraint{
				Coef: []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2},
				Rel:  Relation(rng.Intn(2)), // LE or GE
				RHS:  rng.Float64()*10 - 2,
			})
		}
		// Bound the region so the LP is never unbounded.
		p.Rows = append(p.Rows,
			Constraint{Coef: []float64{1, 0}, Rel: LE, RHS: 50},
			Constraint{Coef: []float64{0, 1}, Rel: LE, RHS: 50},
		)
		want, feas := bruteForce2D(p)
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if !feas {
			if sol.Status == Optimal {
				t.Errorf("trial %d: solver optimal %g on infeasible LP", trial, sol.Objective)
			}
			continue
		}
		if sol.Status != Optimal {
			t.Errorf("trial %d: status %v on feasible LP (want %g)", trial, sol.Status, want)
			continue
		}
		if math.Abs(sol.Objective-want) > 1e-5*(1+math.Abs(want)) {
			t.Errorf("trial %d: objective %g != brute force %g", trial, sol.Objective, want)
		}
	}
}
