package lp_test

import (
	"fmt"

	"convexcache/internal/lp"
)

// Example solves a tiny production-planning LP (maximization by negation).
func Example() {
	sol, _ := lp.Solve(lp.Problem{
		C: []float64{-3, -5}, // maximize 3x + 5y
		Rows: []lp.Constraint{
			{Coef: []float64{1, 0}, Rel: lp.LE, RHS: 4},
			{Coef: []float64{0, 2}, Rel: lp.LE, RHS: 12},
			{Coef: []float64{3, 2}, Rel: lp.LE, RHS: 18},
		},
	})
	fmt.Printf("status=%s objective=%.0f x=%.0f y=%.0f\n",
		sol.Status, -sol.Objective, sol.X[0], sol.X[1])
	// Output:
	// status=optimal objective=36 x=2 y=6
}
