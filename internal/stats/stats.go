// Package stats provides the small statistical toolkit the experiment
// harness reports with: summary statistics, percentiles, histograms and
// table rendering (markdown and CSV).
package stats

import (
	"errors"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	// N is the sample size.
	N int
	// Mean is the arithmetic mean.
	Mean float64
	// Std is the sample standard deviation (n-1 denominator).
	Std float64
	// Min and Max bound the sample.
	Min, Max float64
	// Median is the 50th percentile.
	Median float64
}

// Summarize computes a Summary; it returns an error on an empty sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, errors.New("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Percentile(xs, 50)
	return s, nil
}

// Percentile returns the p-th percentile (0-100) of the sample using linear
// interpolation between closest ranks. It returns NaN on an empty sample.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// GeoMean returns the geometric mean of a positive sample, NaN if any entry
// is non-positive or the sample is empty.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Histogram is a fixed-width bucket histogram.
type Histogram struct {
	// Lo is the lower edge of the first bucket.
	Lo float64
	// Width is the bucket width.
	Width float64
	// Counts holds per-bucket counts; values below Lo land in bucket 0,
	// values beyond the last edge in the final bucket.
	Counts []int64
}

// NewHistogram creates a histogram covering [lo, hi) with the given number
// of buckets.
func NewHistogram(lo, hi float64, buckets int) (*Histogram, error) {
	if buckets <= 0 || hi <= lo {
		return nil, errors.New("stats: histogram needs hi > lo and positive buckets")
	}
	return &Histogram{Lo: lo, Width: (hi - lo) / float64(buckets), Counts: make([]int64, buckets)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	idx := int(math.Floor((x - h.Lo) / h.Width))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int64 {
	var t int64
	for _, c := range h.Counts {
		t += c
	}
	return t
}
