package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows of strings for rendering as markdown or CSV; the
// experiment harness prints every result through it so EXPERIMENTS.md and
// the CLI share formatting.
type Table struct {
	// Title is an optional caption.
	Title string
	// Header names the columns.
	Header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column names.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// formatFloat renders floats compactly: integers without decimals, others
// with up to 4 significant decimals.
func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", v), "0"), ".")
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows exposes the formatted rows (for tests).
func (t *Table) Rows() [][]string { return t.rows }

// WriteMarkdown renders the table as GitHub-flavored markdown.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(t.Header))
		for i := range t.Header {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintf(w, "|-%s-|\n", strings.Join(seps, "-|-")); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the table as CSV with a header row. Cells containing
// commas or quotes are quoted.
func (t *Table) WriteCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = esc(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}
