package stats_test

import (
	"os"

	"convexcache/internal/stats"
)

// ExampleTable renders experiment rows as markdown.
func ExampleTable() {
	tb := stats.NewTable("Demo", "policy", "cost")
	tb.AddRow("alg", 42.5)
	tb.AddRow("lru", 130.0)
	tb.WriteMarkdown(os.Stdout)
	// Output:
	// ### Demo
	//
	// | policy | cost |
	// |--------|------|
	// | alg    | 42.5 |
	// | lru    | 130  |
}
