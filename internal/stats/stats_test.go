package stats

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("std = %g", s.Std)
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("empty sample accepted")
	}
	one, err := Summarize([]float64{7})
	if err != nil || one.Std != 0 || one.Mean != 7 {
		t.Errorf("singleton summary = %+v err=%v", one, err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {-5, 10}, {105, 40},
	}
	for _, tc := range cases {
		if got := Percentile(xs, tc.p); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("P%g = %g, want %g", tc.p, got, tc.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile not NaN")
	}
	// Percentile must not mutate its input.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Percentile mutated input")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("geomean = %g", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("negative entry not NaN")
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Error("empty not NaN")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.9, 10, 100} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
	// Bucket 0: -1, 0, 1.9; bucket 1: 2; bucket 4: 9.9, 10, 100.
	if h.Counts[0] != 3 || h.Counts[1] != 1 || h.Counts[4] != 3 {
		t.Errorf("counts = %v", h.Counts)
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("hi==lo accepted")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("0 buckets accepted")
	}
}

func TestQuickPercentileWithinRange(t *testing.T) {
	prop := func(raw []float64, p float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		pp := math.Mod(math.Abs(p), 100)
		v := Percentile(xs, pp)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return v >= sorted[0] && v <= sorted[len(sorted)-1]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("Demo", "policy", "cost")
	tb.AddRow("lru", 12.5)
	tb.AddRow("alg", 3.0)
	var buf bytes.Buffer
	if err := tb.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"### Demo", "| policy", "| lru", "12.5", "| alg", "| 3 "} {
		if !strings.Contains(out, frag) {
			t.Errorf("markdown missing %q in:\n%s", frag, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x,y", `q"uote`)
	tb.AddRow(1.25, 42)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != `"x,y","q""uote"` {
		t.Errorf("escaped row = %q", lines[1])
	}
	if lines[2] != "1.25,42" {
		t.Errorf("numeric row = %q", lines[2])
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		3.5:     "3.5",
		0.12345: "0.1235",
		-2:      "-2",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%g) = %q, want %q", in, got, want)
		}
	}
}
