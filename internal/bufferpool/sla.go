package bufferpool

import (
	"errors"
	"sync"

	"convexcache/internal/costfn"
	"convexcache/internal/trace"
)

// SLAMeter implements the paper's motivating accounting: "the overall
// performance (or cost) of each user is a non-linear function of the total
// number of misses over a given period of time". Accesses are grouped into
// fixed-size windows; at each window boundary every tenant is charged
// f_i(misses in window), modelling the provider refund of the SQLVM SLA.
type SLAMeter struct {
	mu         sync.Mutex
	window     int64
	costs      []costfn.Func
	sinceClose int64
	cur        []int64
	refunds    []float64
	windows    int
}

// NewSLAMeter creates a meter charging per window of `window` accesses.
func NewSLAMeter(window int, costs []costfn.Func) (*SLAMeter, error) {
	if window <= 0 {
		return nil, errors.New("bufferpool: SLA window must be positive")
	}
	if len(costs) == 0 {
		return nil, errors.New("bufferpool: SLA meter needs cost functions")
	}
	return &SLAMeter{
		window:  int64(window),
		costs:   costs,
		cur:     make([]int64, len(costs)),
		refunds: make([]float64, len(costs)),
	}, nil
}

// Record accounts one access of the tenant; miss indicates a page fetch.
func (m *SLAMeter) Record(tenant trace.Tenant, miss bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if miss && int(tenant) < len(m.cur) {
		m.cur[tenant]++
	}
	m.sinceClose++
	if m.sinceClose == m.window {
		m.closeWindowLocked()
	}
}

func (m *SLAMeter) closeWindowLocked() {
	for i, f := range m.costs {
		m.refunds[i] += f.Value(float64(m.cur[i]))
		m.cur[i] = 0
	}
	m.windows++
	m.sinceClose = 0
}

// Flush closes the current partial window, if it has any accesses.
func (m *SLAMeter) Flush() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sinceClose > 0 {
		m.closeWindowLocked()
	}
}

// Refunds returns the cumulative per-tenant refund paid so far.
func (m *SLAMeter) Refunds() []float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]float64, len(m.refunds))
	copy(out, m.refunds)
	return out
}

// TotalRefund sums the per-tenant refunds.
func (m *SLAMeter) TotalRefund() float64 {
	total := 0.0
	for _, r := range m.Refunds() {
		total += r
	}
	return total
}

// Windows returns the number of closed accounting windows.
func (m *SLAMeter) Windows() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.windows
}
