package bufferpool

import (
	"testing"

	"convexcache/internal/trace"
)

func TestPrefetchLoadsAhead(t *testing.T) {
	p, disk := newPool(t, 32, 1, NewLRUReplacer(), nil)
	pf := NewPrefetcher(p, 3, 4)
	// Sequential scan arms the prefetcher after 3 pages.
	for pg := trace.PageID(1); pg <= 3; pg++ {
		getRelease(t, p, 0, pg)
		pf.Note(0, pg)
	}
	if pf.Issued() == 0 {
		t.Fatal("prefetcher never armed")
	}
	readsBefore := disk.Reads()
	// Pages 4..7 should already be resident: all hits, no new reads.
	for pg := trace.PageID(4); pg <= 7; pg++ {
		getRelease(t, p, 0, pg)
		pf.Note(0, pg)
	}
	s := p.Stats()
	if s.Hits[0] < 4 {
		t.Errorf("hits = %d, want >= 4 from read-ahead", s.Hits[0])
	}
	_ = readsBefore
}

func TestPrefetchRandomAccessStaysQuiet(t *testing.T) {
	p, _ := newPool(t, 16, 1, NewLRUReplacer(), nil)
	pf := NewPrefetcher(p, 3, 4)
	for _, pg := range []trace.PageID{5, 90, 2, 40, 7, 66} {
		getRelease(t, p, 0, pg)
		pf.Note(0, pg)
	}
	if pf.Issued() != 0 {
		t.Errorf("prefetcher issued %d on random access", pf.Issued())
	}
}

func TestPrefetchDoesNotChargeDemandMisses(t *testing.T) {
	p, _ := newPool(t, 16, 1, NewLRUReplacer(), nil)
	if err := p.Prefetch(0, 9); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Misses[0] != 0 {
		t.Errorf("prefetch charged a demand miss")
	}
	// The page is resident: demand access is a hit.
	getRelease(t, p, 0, 9)
	if p.Stats().Hits[0] != 1 {
		t.Errorf("prefetched page not resident")
	}
}

func TestPrefetchRespectsPins(t *testing.T) {
	p, _ := newPool(t, 1, 1, NewLRUReplacer(), nil)
	if err := p.Get(0, 1, nil); err != nil { // pin the only frame
		t.Fatal(err)
	}
	if err := p.Prefetch(0, 2); err == nil {
		t.Error("prefetch succeeded with every frame pinned")
	}
	p.Release(1)
	if err := p.Prefetch(5, 1); err == nil {
		t.Error("prefetch for unknown tenant accepted")
	}
}

func TestPrefetchPerTenantRuns(t *testing.T) {
	p, _ := newPool(t, 64, 2, NewLRUReplacer(), nil)
	pf := NewPrefetcher(p, 3, 2)
	// Interleaved tenants, each sequential in its own space: both runs
	// must be detected independently.
	for i := int64(1); i <= 4; i++ {
		getRelease(t, p, 0, trace.PageID(i))
		pf.Note(0, trace.PageID(i))
		getRelease(t, p, 1, trace.PageID(1000+i))
		pf.Note(1, trace.PageID(1000+i))
	}
	if pf.Issued() < 4 {
		t.Errorf("interleaved runs not both detected: issued %d", pf.Issued())
	}
}
