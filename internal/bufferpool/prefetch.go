package bufferpool

import (
	"sync"

	"convexcache/internal/trace"
)

// Prefetcher detects per-tenant sequential access and warms the pool ahead
// of the scan — the classical DB read-ahead that pairs with scan-resistant
// replacement. Detection: Degree consecutive ascending page accesses arm
// the prefetcher; it then fetches Window pages ahead of the current
// position through Pool.Prefetch (admission goes through the normal
// replacer, so a convex replacer still protects expensive tenants from
// their own scans).
type Prefetcher struct {
	mu sync.Mutex
	// Degree is the run length that arms prefetching (default 3).
	Degree int
	// Window is how many pages ahead to fetch once armed (default 8).
	Window int

	pool  *Pool
	state map[trace.Tenant]*runState

	issued atomic64
}

type runState struct {
	lastPage trace.PageID
	runLen   int
}

// atomic64 is a tiny counter wrapper to keep the struct copy-safe checks
// honest.
type atomic64 struct {
	mu sync.Mutex
	v  int64
}

func (a *atomic64) add(d int64) {
	a.mu.Lock()
	a.v += d
	a.mu.Unlock()
}

func (a *atomic64) load() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.v
}

// NewPrefetcher wires a prefetcher to a pool.
func NewPrefetcher(pool *Pool, degree, window int) *Prefetcher {
	if degree <= 0 {
		degree = 3
	}
	if window <= 0 {
		window = 8
	}
	return &Prefetcher{
		Degree: degree,
		Window: window,
		pool:   pool,
		state:  make(map[trace.Tenant]*runState),
	}
}

// Note observes an access and issues read-ahead when a sequential run is
// detected. Call it after every successful Get.
func (p *Prefetcher) Note(tenant trace.Tenant, page trace.PageID) {
	p.mu.Lock()
	st, ok := p.state[tenant]
	if !ok {
		st = &runState{}
		p.state[tenant] = st
	}
	if page == st.lastPage+1 {
		st.runLen++
	} else {
		st.runLen = 1
	}
	st.lastPage = page
	armed := st.runLen >= p.Degree
	window := p.Window
	p.mu.Unlock()
	if !armed {
		return
	}
	for i := 1; i <= window; i++ {
		if err := p.pool.Prefetch(tenant, page+trace.PageID(i)); err != nil {
			return // pool full of pinned pages or tenant invalid; stop
		}
		p.issued.add(1)
	}
}

// Issued returns the number of prefetched pages.
func (p *Prefetcher) Issued() int64 { return p.issued.load() }

// Prefetch loads a page into the pool without pinning it; a no-op when the
// page is already resident. Misses are NOT charged to the tenant's demand
// counters (prefetch I/O is accounted separately by the disk read counter).
func (p *Pool) Prefetch(tenant trace.Tenant, page trace.PageID) error {
	if int(tenant) >= len(p.hits) || tenant < 0 {
		return ErrNoEvictable
	}
	step := int(p.accesses.Add(1))
	r := trace.Request{Page: page, Tenant: tenant}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.frames[page]; ok {
		return nil
	}
	if len(p.frames) >= p.cfg.Frames {
		victim, ok := p.cfg.Replacer.Evict(step, r, func(q trace.PageID) bool {
			fr, resident := p.frames[q]
			return !resident || fr.pins > 0
		})
		if !ok {
			return ErrNoEvictable
		}
		delete(p.frames, victim)
	}
	fr := &frame{tenant: tenant, page: page}
	p.disk.ReadPage(tenant, page, fr.data[:])
	p.frames[page] = fr
	p.cfg.Replacer.Touch(step, r, false)
	return nil
}
