package bufferpool

import (
	"container/list"

	"convexcache/internal/core"
	"convexcache/internal/trace"
)

// Replacer picks buffer-pool eviction victims. Unlike sim.Policy it must
// honour pins: Evict receives a skip predicate (pinned or non-resident
// pages) and may have to pass over its first choice.
type Replacer interface {
	// Touch notifies the replacer of an access (hit or miss-insert).
	Touch(step int, r trace.Request, hit bool)
	// Evict removes and returns an evictable page, honouring skip. It
	// returns false when no unpinned page exists.
	Evict(step int, incoming trace.Request, skip func(trace.PageID) bool) (trace.PageID, bool)
	// Reset clears all state.
	Reset()
}

// LRUReplacer is the classical recency replacer with pin skipping.
type LRUReplacer struct {
	order *list.List // front = most recent
	elem  map[trace.PageID]*list.Element
}

// NewLRUReplacer returns an empty LRU replacer.
func NewLRUReplacer() *LRUReplacer {
	return &LRUReplacer{order: list.New(), elem: make(map[trace.PageID]*list.Element)}
}

// Touch implements Replacer.
func (l *LRUReplacer) Touch(step int, r trace.Request, hit bool) {
	if e, ok := l.elem[r.Page]; ok {
		l.order.MoveToFront(e)
		return
	}
	l.elem[r.Page] = l.order.PushFront(r.Page)
}

// Evict implements Replacer: walk from the LRU end skipping pinned pages.
func (l *LRUReplacer) Evict(step int, incoming trace.Request, skip func(trace.PageID) bool) (trace.PageID, bool) {
	for e := l.order.Back(); e != nil; e = e.Prev() {
		p := e.Value.(trace.PageID)
		if skip(p) {
			continue
		}
		l.order.Remove(e)
		delete(l.elem, p)
		return p, true
	}
	return 0, false
}

// Reset implements Replacer.
func (l *LRUReplacer) Reset() {
	l.order.Init()
	l.elem = make(map[trace.PageID]*list.Element)
}

// ConvexReplacer embeds the paper's budget rule (the core.Fast formulation)
// in the buffer pool: the victim is the least-recently-used unpinned page of
// the tenant minimizing marginal(i) - aging(candidate). Pins make the scan
// walk past the per-tenant LRU end when necessary.
type ConvexReplacer struct {
	opt   core.Options
	aging float64
	m     map[trace.Tenant]float64
	lists map[trace.Tenant]*list.List // front = most recent
	elem  map[trace.PageID]*list.Element
	info  map[trace.PageID]*convexPage
}

type convexPage struct {
	owner    trace.Tenant
	ageStart float64
}

// NewConvexReplacer builds the replacer with the tenants' cost options.
func NewConvexReplacer(opt core.Options) *ConvexReplacer {
	c := &ConvexReplacer{opt: opt}
	c.Reset()
	return c
}

// Touch implements Replacer.
func (c *ConvexReplacer) Touch(step int, r trace.Request, hit bool) {
	if e, ok := c.elem[r.Page]; ok {
		c.lists[r.Tenant].MoveToFront(e)
		c.info[r.Page].ageStart = c.aging
		return
	}
	l, ok := c.lists[r.Tenant]
	if !ok {
		l = list.New()
		c.lists[r.Tenant] = l
	}
	c.elem[r.Page] = l.PushFront(r.Page)
	c.info[r.Page] = &convexPage{owner: r.Tenant, ageStart: c.aging}
	if c.opt.CountMisses && !hit {
		c.m[r.Tenant]++
	}
}

// Evict implements Replacer: per tenant, the best candidate is the
// least-recently-used unpinned page; across tenants the minimum budget wins.
func (c *ConvexReplacer) Evict(step int, incoming trace.Request, skip func(trace.PageID) bool) (trace.PageID, bool) {
	var bestPage trace.PageID
	bestBudget := 0.0
	found := false
	for tn, l := range c.lists {
		marg := c.opt.Marginal(tn, c.m[tn])
		for e := l.Back(); e != nil; e = e.Prev() {
			p := e.Value.(trace.PageID)
			if skip(p) {
				continue
			}
			b := marg - (c.aging - c.info[p].ageStart)
			if !found || b < bestBudget {
				bestPage, bestBudget, found = p, b, true
			}
			break // older unpinned candidates of this tenant cannot beat this one
		}
	}
	if !found {
		return 0, false
	}
	info := c.info[bestPage]
	c.aging += bestBudget
	if !c.opt.CountMisses {
		c.m[info.owner]++
	}
	c.lists[info.owner].Remove(c.elem[bestPage])
	delete(c.elem, bestPage)
	delete(c.info, bestPage)
	return bestPage, true
}

// Reset implements Replacer.
func (c *ConvexReplacer) Reset() {
	c.aging = 0
	c.m = make(map[trace.Tenant]float64)
	c.lists = make(map[trace.Tenant]*list.List)
	c.elem = make(map[trace.PageID]*list.Element)
	c.info = make(map[trace.PageID]*convexPage)
}
