package bufferpool_test

import (
	"fmt"

	"convexcache/internal/bufferpool"
	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/trace"
)

// Example wires the convex replacer into a buffer pool with SLA metering.
func Example() {
	costs := []costfn.Func{
		costfn.MustParse("sla:2,0.1,10"),
		costfn.Linear{W: 0.1},
	}
	meter, _ := bufferpool.NewSLAMeter(4, costs)
	disk := &bufferpool.Disk{}
	pool, _ := bufferpool.New(disk, 2, bufferpool.Config{
		Frames:   2,
		Replacer: bufferpool.NewConvexReplacer(core.Options{Costs: costs, CountMisses: true}),
		Meter:    meter,
	})
	buf := make([]byte, bufferpool.PageSize)
	for _, access := range []struct {
		t trace.Tenant
		p trace.PageID
	}{{0, 1}, {1, 100}, {0, 1}, {1, 101}} {
		if err := pool.Get(access.t, access.p, buf); err != nil {
			fmt.Println("error:", err)
			return
		}
		pool.Release(access.p)
	}
	meter.Flush()
	s := pool.Stats()
	fmt.Printf("hits=%d misses=%v reads=%d windows=%d\n",
		s.Hits[0]+s.Hits[1], s.Misses, disk.Reads(), meter.Windows())
	// Output:
	// hits=1 misses=[1 2] reads=3 windows=1
}
