package bufferpool

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/trace"
)

func newPool(t *testing.T, frames, tenants int, rep Replacer, meter *SLAMeter) (*Pool, *Disk) {
	t.Helper()
	disk := &Disk{}
	p, err := New(disk, tenants, Config{Frames: frames, Replacer: rep, Meter: meter})
	if err != nil {
		t.Fatal(err)
	}
	return p, disk
}

func getRelease(t *testing.T, p *Pool, tn trace.Tenant, pg trace.PageID) {
	t.Helper()
	if err := p.Get(tn, pg, nil); err != nil {
		t.Fatalf("Get(%d,%d): %v", tn, pg, err)
	}
	if err := p.Release(pg); err != nil {
		t.Fatalf("Release(%d): %v", pg, err)
	}
}

func TestDiskDeterministic(t *testing.T) {
	d := &Disk{}
	a := make([]byte, PageSize)
	b := make([]byte, PageSize)
	d.ReadPage(1, 42, a)
	d.ReadPage(1, 42, b)
	if !bytes.Equal(a, b) {
		t.Error("same page read twice differs")
	}
	d.ReadPage(2, 42, b)
	if bytes.Equal(a, b) {
		t.Error("different tenants share page contents")
	}
	if d.Reads() != 3 {
		t.Errorf("reads = %d", d.Reads())
	}
}

func TestPoolHitMissAccounting(t *testing.T) {
	p, disk := newPool(t, 2, 1, NewLRUReplacer(), nil)
	getRelease(t, p, 0, 1)
	getRelease(t, p, 0, 2)
	getRelease(t, p, 0, 1) // hit
	getRelease(t, p, 0, 3) // evicts LRU page 2
	getRelease(t, p, 0, 2) // miss again
	s := p.Stats()
	if s.Misses[0] != 4 || s.Hits[0] != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.Resident != 2 {
		t.Errorf("resident = %d", s.Resident)
	}
	if disk.Reads() != 4 {
		t.Errorf("disk reads = %d", disk.Reads())
	}
}

func TestPoolDataIntegrity(t *testing.T) {
	p, _ := newPool(t, 2, 1, NewLRUReplacer(), nil)
	want := make([]byte, PageSize)
	(&Disk{}).ReadPage(0, 7, want)
	got := make([]byte, PageSize)
	if err := p.Get(0, 7, got); err != nil {
		t.Fatal(err)
	}
	defer p.Release(7)
	if !bytes.Equal(got, want) {
		t.Error("page contents differ from disk contents")
	}
}

func TestPinnedPagesAreNotEvicted(t *testing.T) {
	p, _ := newPool(t, 2, 1, NewLRUReplacer(), nil)
	if err := p.Get(0, 1, nil); err != nil { // pinned
		t.Fatal(err)
	}
	getRelease(t, p, 0, 2)
	// Page 1 is LRU but pinned; eviction must take page 2.
	getRelease(t, p, 0, 3)
	// Page 1 must still be resident: a re-Get is a hit.
	if err := p.Get(0, 1, nil); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Hits[0] != 1 {
		t.Errorf("hits = %d, want 1 (pinned page retained)", s.Hits[0])
	}
	p.Release(1)
	p.Release(1)
}

func TestAllPinnedFails(t *testing.T) {
	p, _ := newPool(t, 1, 1, NewLRUReplacer(), nil)
	if err := p.Get(0, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Get(0, 2, nil); !errors.Is(err, ErrNoEvictable) {
		t.Errorf("got %v, want ErrNoEvictable", err)
	}
	p.Release(1)
}

func TestReleaseErrors(t *testing.T) {
	p, _ := newPool(t, 2, 1, NewLRUReplacer(), nil)
	if err := p.Release(5); err == nil {
		t.Error("release of non-resident page accepted")
	}
	getRelease(t, p, 0, 1)
	if err := p.Release(1); err == nil {
		t.Error("double release accepted")
	}
}

func TestTenantValidation(t *testing.T) {
	p, _ := newPool(t, 2, 1, NewLRUReplacer(), nil)
	if err := p.Get(5, 1, nil); err == nil {
		t.Error("unknown tenant accepted")
	}
	getRelease(t, p, 0, 1)
	// Cross-tenant access to a resident page is rejected. Tenant ids are
	// validated first, so use a two-tenant pool.
	p2, _ := newPool(t, 2, 2, NewLRUReplacer(), nil)
	getRelease(t, p2, 0, 1)
	if err := p2.Get(1, 1, nil); err == nil {
		t.Error("cross-tenant page access accepted")
	}
}

func TestNewValidation(t *testing.T) {
	d := &Disk{}
	if _, err := New(d, 1, Config{Frames: 0, Replacer: NewLRUReplacer()}); err == nil {
		t.Error("0 frames accepted")
	}
	if _, err := New(d, 1, Config{Frames: 2}); err == nil {
		t.Error("nil replacer accepted")
	}
	if _, err := New(d, 0, Config{Frames: 2, Replacer: NewLRUReplacer()}); err == nil {
		t.Error("0 tenants accepted")
	}
}

func TestConvexReplacerFavorsSteepTenant(t *testing.T) {
	// Tenant 0 quadratic and already miss-laden, tenant 1 cheap linear:
	// evictions should fall on tenant 1's pages.
	opt := core.Options{Costs: []costfn.Func{
		costfn.Monomial{C: 2, Beta: 2},
		costfn.Linear{W: 0.1},
	}, CountMisses: true}
	p, _ := newPool(t, 4, 2, NewConvexReplacer(opt), nil)
	// Warm with 2 pages each.
	getRelease(t, p, 0, 1)
	getRelease(t, p, 0, 2)
	getRelease(t, p, 1, 101)
	getRelease(t, p, 1, 102)
	// Build up tenant-0 misses to raise its marginal.
	for i := trace.PageID(3); i < 9; i++ {
		getRelease(t, p, 0, i)
	}
	// Now tenant 1 inserts a new page; then tenant 0's hot pages must
	// still largely be resident relative to tenant 1's old ones.
	getRelease(t, p, 1, 103)
	s := p.Stats()
	if s.Misses[0] == 0 || s.Misses[1] == 0 {
		t.Fatalf("vacuous: %+v", s)
	}
	// Re-access the most recent tenant-0 pages: should hit.
	before := p.Stats().Hits[0]
	getRelease(t, p, 0, 8)
	if p.Stats().Hits[0] != before+1 {
		t.Errorf("tenant 0's recent page was evicted despite steep cost")
	}
}

func TestSLAMeterWindows(t *testing.T) {
	costs := []costfn.Func{costfn.Monomial{C: 1, Beta: 2}}
	m, err := NewSLAMeter(4, costs)
	if err != nil {
		t.Fatal(err)
	}
	// Window 1: 3 misses in 4 accesses -> refund 9.
	m.Record(0, true)
	m.Record(0, true)
	m.Record(0, false)
	m.Record(0, true)
	if m.Windows() != 1 {
		t.Fatalf("windows = %d", m.Windows())
	}
	if got := m.Refunds()[0]; got != 9 {
		t.Errorf("refund = %g, want 9", got)
	}
	// Partial window: 1 miss in 2 accesses, flushed -> +1.
	m.Record(0, true)
	m.Record(0, false)
	m.Flush()
	if got := m.TotalRefund(); got != 10 {
		t.Errorf("total refund = %g, want 10", got)
	}
	if m.Windows() != 2 {
		t.Errorf("windows = %d, want 2", m.Windows())
	}
	// Flush with nothing pending is a no-op.
	m.Flush()
	if m.Windows() != 2 {
		t.Errorf("extra window after empty flush")
	}
}

func TestSLAMeterValidation(t *testing.T) {
	if _, err := NewSLAMeter(0, []costfn.Func{costfn.Linear{W: 1}}); err == nil {
		t.Error("window=0 accepted")
	}
	if _, err := NewSLAMeter(5, nil); err == nil {
		t.Error("no costs accepted")
	}
}

func TestPoolConcurrentClients(t *testing.T) {
	costs := []costfn.Func{
		costfn.Monomial{C: 1, Beta: 2},
		costfn.Linear{W: 1},
		costfn.Linear{W: 3},
	}
	meter, err := NewSLAMeter(64, costs)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.Options{Costs: costs, CountMisses: true}
	p, _ := newPool(t, 32, 3, NewConvexReplacer(opt), meter)
	const workers = 8
	const opsPer = 2000
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			buf := make([]byte, PageSize)
			for i := 0; i < opsPer; i++ {
				tn := trace.Tenant(rng.Intn(3))
				pg := trace.PageID(int64(tn)*1000 + int64(rng.Intn(40)))
				if err := p.Get(tn, pg, buf); err != nil {
					errs <- err
					return
				}
				if err := p.Release(pg); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s := p.Stats()
	var total int64
	for i := range s.Hits {
		total += s.Hits[i] + s.Misses[i]
	}
	if total != workers*opsPer {
		t.Errorf("accounted accesses %d != %d", total, workers*opsPer)
	}
	if s.Resident > 32 {
		t.Errorf("resident %d exceeds capacity", s.Resident)
	}
	meter.Flush()
	if meter.TotalRefund() <= 0 {
		t.Error("no refund accumulated despite misses")
	}
}

func TestLRUReplacerWalksPastPinned(t *testing.T) {
	rep := NewLRUReplacer()
	rep.Touch(0, trace.Request{Page: 1, Tenant: 0}, false)
	rep.Touch(1, trace.Request{Page: 2, Tenant: 0}, false)
	// Page 1 is "pinned": victim must be 2.
	v, ok := rep.Evict(2, trace.Request{Page: 3, Tenant: 0}, func(p trace.PageID) bool { return p == 1 })
	if !ok || v != 2 {
		t.Errorf("victim = %d,%v, want 2", v, ok)
	}
	// Everything pinned: no victim.
	if _, ok := rep.Evict(3, trace.Request{Page: 4, Tenant: 0}, func(trace.PageID) bool { return true }); ok {
		t.Error("found victim with everything pinned")
	}
}

func TestReplacersReset(t *testing.T) {
	for _, rep := range []Replacer{
		NewLRUReplacer(),
		NewConvexReplacer(core.Options{Costs: []costfn.Func{costfn.Linear{W: 1}}, CountMisses: true}),
	} {
		rep.Touch(0, trace.Request{Page: 1, Tenant: 0}, false)
		rep.Reset()
		if _, ok := rep.Evict(1, trace.Request{Page: 2, Tenant: 0}, func(trace.PageID) bool { return false }); ok {
			t.Error("victim found after Reset")
		}
	}
}
