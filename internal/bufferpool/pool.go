// Package bufferpool is the SQLVM-style deployment substrate of the
// reproduction: a concurrent multi-tenant database buffer pool whose
// replacement decisions are pluggable, so the paper's convex-cost algorithm
// can be exercised in the setting that motivated it (Section 1.1 and the
// companion VLDB'15 paper): shared memory, per-tenant SLAs expressed as
// cost functions of misses per accounting window, concurrent clients.
//
// The "disk" is simulated: page contents are generated deterministically
// and read latency is accounted, not slept.
package bufferpool

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"convexcache/internal/trace"
)

// PageSize is the simulated page payload size in bytes.
const PageSize = 256

// Disk simulates the backing store: deterministic page contents plus I/O
// accounting.
type Disk struct {
	reads atomic.Int64
}

// ReadPage materializes the page's deterministic contents and counts the
// I/O.
func (d *Disk) ReadPage(tenant trace.Tenant, page trace.PageID, buf []byte) {
	d.reads.Add(1)
	seed := uint64(tenant)*0x9E3779B97F4A7C15 ^ uint64(page)*0xBF58476D1CE4E5B9
	for i := range buf {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		buf[i] = byte(seed)
	}
}

// Reads returns the number of disk reads so far.
func (d *Disk) Reads() int64 { return d.reads.Load() }

// frame is one buffer slot.
type frame struct {
	tenant trace.Tenant
	page   trace.PageID
	pins   int
	data   [PageSize]byte
}

// Config configures a buffer pool.
type Config struct {
	// Frames is the pool capacity in pages; must be positive.
	Frames int
	// Replacer picks eviction victims; required.
	Replacer Replacer
	// Meter, when non-nil, receives per-access accounting (hits/misses)
	// for SLA evaluation.
	Meter *SLAMeter
}

// Pool is a concurrent multi-tenant buffer pool.
type Pool struct {
	mu       sync.Mutex
	cfg      Config
	disk     *Disk
	frames   map[trace.PageID]*frame
	accesses atomic.Int64

	hits   []atomic.Int64
	misses []atomic.Int64
}

// ErrNoEvictable is returned by Get when every resident page is pinned and
// the pool cannot make room.
var ErrNoEvictable = errors.New("bufferpool: all resident pages are pinned")

// New creates a buffer pool over the given simulated disk.
func New(disk *Disk, tenants int, cfg Config) (*Pool, error) {
	if cfg.Frames <= 0 {
		return nil, errors.New("bufferpool: frame count must be positive")
	}
	if cfg.Replacer == nil {
		return nil, errors.New("bufferpool: replacer is required")
	}
	if tenants <= 0 {
		return nil, errors.New("bufferpool: tenant count must be positive")
	}
	return &Pool{
		cfg:    cfg,
		disk:   disk,
		frames: make(map[trace.PageID]*frame, cfg.Frames),
		hits:   make([]atomic.Int64, tenants),
		misses: make([]atomic.Int64, tenants),
	}, nil
}

// Get pins the page into the pool, fetching it from disk on a miss, and
// copies its contents into out (which must be PageSize bytes or nil to skip
// the copy). Callers must Release exactly once per successful Get.
func (p *Pool) Get(tenant trace.Tenant, page trace.PageID, out []byte) error {
	if int(tenant) >= len(p.hits) || tenant < 0 {
		return fmt.Errorf("bufferpool: unknown tenant %d", tenant)
	}
	step := int(p.accesses.Add(1))
	r := trace.Request{Page: page, Tenant: tenant}

	p.mu.Lock()
	defer p.mu.Unlock()
	if fr, ok := p.frames[page]; ok {
		if fr.tenant != tenant {
			return fmt.Errorf("bufferpool: page %d belongs to tenant %d, requested by %d", page, fr.tenant, tenant)
		}
		fr.pins++
		p.hits[tenant].Add(1)
		p.cfg.Replacer.Touch(step, r, true)
		if p.cfg.Meter != nil {
			p.cfg.Meter.Record(tenant, false)
		}
		if out != nil {
			copy(out, fr.data[:])
		}
		return nil
	}
	// Miss: make room if necessary.
	if len(p.frames) >= p.cfg.Frames {
		victim, ok := p.cfg.Replacer.Evict(step, r, func(q trace.PageID) bool {
			fr, resident := p.frames[q]
			return !resident || fr.pins > 0
		})
		if !ok {
			return ErrNoEvictable
		}
		delete(p.frames, victim)
	}
	fr := &frame{tenant: tenant, page: page, pins: 1}
	p.disk.ReadPage(tenant, page, fr.data[:])
	p.frames[page] = fr
	p.misses[tenant].Add(1)
	p.cfg.Replacer.Touch(step, r, false)
	if p.cfg.Meter != nil {
		p.cfg.Meter.Record(tenant, true)
	}
	if out != nil {
		copy(out, fr.data[:])
	}
	return nil
}

// Release unpins a page previously pinned by Get.
func (p *Pool) Release(page trace.PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	fr, ok := p.frames[page]
	if !ok {
		return fmt.Errorf("bufferpool: release of non-resident page %d", page)
	}
	if fr.pins <= 0 {
		return fmt.Errorf("bufferpool: release of unpinned page %d", page)
	}
	fr.pins--
	return nil
}

// Stats snapshots per-tenant counters.
type Stats struct {
	// Hits and Misses count accesses per tenant.
	Hits, Misses []int64
	// Resident is the number of pages currently in the pool.
	Resident int
	// DiskReads counts simulated I/Os.
	DiskReads int64
}

// Stats returns a consistent snapshot.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	resident := len(p.frames)
	p.mu.Unlock()
	s := Stats{
		Hits:      make([]int64, len(p.hits)),
		Misses:    make([]int64, len(p.misses)),
		Resident:  resident,
		DiskReads: p.disk.Reads(),
	}
	for i := range p.hits {
		s.Hits[i] = p.hits[i].Load()
		s.Misses[i] = p.misses[i].Load()
	}
	return s
}
