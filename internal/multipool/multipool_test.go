package multipool

import (
	"math/rand"
	"testing"

	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
	"convexcache/internal/workload"
)

func quadCosts(n int) []costfn.Func {
	out := make([]costfn.Func, n)
	for i := range out {
		out[i] = costfn.Monomial{C: 1, Beta: 2}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	costs := quadCosts(2)
	if _, err := New(Config{Costs: costs, Assign: []int{0}}); err == nil {
		t.Error("no pools accepted")
	}
	if _, err := New(Config{PoolSizes: []int{0}, Costs: costs, Assign: []int{0}}); err == nil {
		t.Error("zero pool size accepted")
	}
	if _, err := New(Config{PoolSizes: []int{4}, Costs: costs}); err == nil {
		t.Error("empty assignment accepted")
	}
	if _, err := New(Config{PoolSizes: []int{4}, Costs: costs, Assign: []int{2}}); err == nil {
		t.Error("out-of-range assignment accepted")
	}
}

func TestSinglePoolMatchesSimEngine(t *testing.T) {
	// One pool with all tenants must reproduce sim.Run with core.Fast in
	// CountMisses mode exactly.
	rng := rand.New(rand.NewSource(5))
	b := trace.NewBuilder()
	for i := 0; i < 600; i++ {
		tn := rng.Intn(3)
		b.Add(trace.Tenant(tn), trace.PageID(tn*100+rng.Intn(8)))
	}
	tr := b.MustBuild()
	costs := quadCosts(3)
	sys, err := New(Config{PoolSizes: []int{6}, Costs: costs, Assign: []int{0, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sys.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	want := sim.MustRun(tr, core.NewFast(core.Options{Costs: costs, CountMisses: true}), sim.Config{K: 6})
	for i := 0; i < 3; i++ {
		if got.Misses[i] != want.Misses[i] {
			t.Errorf("tenant %d: multipool misses %d != engine %d", i, got.Misses[i], want.Misses[i])
		}
	}
	if got.Migrations != 0 || got.SwitchTotal != 0 {
		t.Errorf("unexpected migrations: %+v", got)
	}
}

func TestPoolsAreIsolated(t *testing.T) {
	// Two tenants in separate pools never evict each other: each gets its
	// pool's capacity regardless of the other's flood.
	b := trace.NewBuilder()
	b.Add(0, 1).Add(0, 2)
	for i := 0; i < 50; i++ {
		b.Add(1, trace.PageID(1000+i))
	}
	b.Add(0, 1).Add(0, 2)
	tr := b.MustBuild()
	costs := quadCosts(2)
	sys, err := New(Config{PoolSizes: []int{2, 2}, Costs: costs, Assign: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses[0] != 2 {
		t.Errorf("tenant 0 misses %d, want 2 (cold only, isolated pool)", res.Misses[0])
	}
}

func TestMigrationDropsCachedPages(t *testing.T) {
	costs := quadCosts(2)
	sys, err := New(Config{PoolSizes: []int{4, 4}, Costs: costs, Assign: []int{0, 1}, SwitchCost: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Warm tenant 0 in pool 0.
	for _, pg := range []trace.PageID{1, 2} {
		if err := sys.Serve(trace.Request{Page: pg, Tenant: 0}); err != nil {
			t.Fatal(err)
		}
	}
	sys.migrate(0, 1)
	if got := sys.Assignment()[0]; got != 1 {
		t.Fatalf("assignment = %d", got)
	}
	// Re-access: must be cold misses in the new pool.
	before := sys.Result().Misses[0]
	for _, pg := range []trace.PageID{1, 2} {
		if err := sys.Serve(trace.Request{Page: pg, Tenant: 0}); err != nil {
			t.Fatal(err)
		}
	}
	res := sys.Result()
	if res.Misses[0] != before+2 {
		t.Errorf("misses after migration = %d, want %d", res.Misses[0], before+2)
	}
	if res.Migrations != 1 || res.SwitchTotal != 3 {
		t.Errorf("migration accounting: %+v", res)
	}
	if res.TotalCost() != res.CacheCost+3 {
		t.Errorf("total cost mismatch")
	}
}

func TestMigrateNoops(t *testing.T) {
	sys, err := New(Config{PoolSizes: []int{2, 2}, Costs: quadCosts(1), Assign: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	sys.migrate(0, 0) // same pool
	sys.migrate(5, 1) // unknown tenant
	sys.migrate(0, 9) // invalid pool
	if sys.Result().Migrations != 0 {
		t.Errorf("no-op migrations counted")
	}
}

func TestBalancedAssign(t *testing.T) {
	a := BalancedAssign(5, 2)
	want := []int{0, 1, 0, 1, 0}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("assign = %v", a)
		}
	}
}

// phaseTrace builds a workload whose load shifts between tenants so that a
// static assignment becomes unbalanced mid-run.
func phaseTrace(t *testing.T, length int) (*trace.Trace, []costfn.Func) {
	t.Helper()
	// 4 tenants. First half: tenants 0,1 hot. Second half: tenants 2,3 hot.
	mkStream := func(seed int64) workload.Stream {
		z, err := workload.NewZipf(seed, 60, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		return z
	}
	half := length / 2
	first, err := workload.Mix(1, []workload.TenantStream{
		{Tenant: 0, Stream: mkStream(10), Rate: 4},
		{Tenant: 1, Stream: mkStream(11), Rate: 4},
		{Tenant: 2, Stream: mkStream(12), Rate: 1},
		{Tenant: 3, Stream: mkStream(13), Rate: 1},
	}, half)
	if err != nil {
		t.Fatal(err)
	}
	second, err := workload.Mix(2, []workload.TenantStream{
		{Tenant: 0, Stream: mkStream(14), Rate: 1},
		{Tenant: 1, Stream: mkStream(15), Rate: 1},
		{Tenant: 2, Stream: mkStream(16), Rate: 4},
		{Tenant: 3, Stream: mkStream(17), Rate: 4},
	}, length-half)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := first.Concat(second)
	if err != nil {
		t.Fatal(err)
	}
	return tr, quadCosts(4)
}

func TestGreedyRebalancerReducesCostOnShiftingLoad(t *testing.T) {
	tr, costs := phaseTrace(t, 12000)
	// Adversarial static assignment: both phase-one hot tenants share pool
	// 0, both phase-two hot tenants share pool 1.
	assign := []int{0, 0, 1, 1}
	static, err := New(Config{PoolSizes: []int{30, 30}, Costs: costs, Assign: assign})
	if err != nil {
		t.Fatal(err)
	}
	sres, err := static.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := New(Config{
		PoolSizes: []int{30, 30}, Costs: costs, Assign: assign,
		SwitchCost: 50, EpochLen: 500,
		Rebalancer: &GreedyRebalancer{},
	})
	if err != nil {
		t.Fatal(err)
	}
	dres, err := dyn.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if dres.Migrations == 0 {
		t.Fatal("rebalancer never migrated despite shifting load")
	}
	if dres.TotalCost() >= sres.TotalCost() {
		t.Errorf("rebalancing total cost %.0f not below static %.0f (migrations %d)",
			dres.TotalCost(), sres.TotalCost(), dres.Migrations)
	}
}

func TestSinglePoolBeatsPartitionedPools(t *testing.T) {
	// Statistical multiplexing: one pool of 60 pages should not do worse
	// than two isolated pools of 30 under shifting load.
	tr, costs := phaseTrace(t, 12000)
	single, err := New(Config{PoolSizes: []int{60}, Costs: costs, Assign: []int{0, 0, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	sres, err := single.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := New(Config{PoolSizes: []int{30, 30}, Costs: costs, Assign: []int{0, 0, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	pres, err := parts.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if sres.CacheCost > pres.CacheCost {
		t.Errorf("single pool cost %.0f above partitioned %.0f", sres.CacheCost, pres.CacheCost)
	}
}

func TestServeUnknownTenant(t *testing.T) {
	sys, err := New(Config{PoolSizes: []int{2}, Costs: quadCosts(1), Assign: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Serve(trace.Request{Page: 1, Tenant: 7}); err == nil {
		t.Error("unknown tenant accepted")
	}
}
