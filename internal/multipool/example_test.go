package multipool_test

import (
	"fmt"

	"convexcache/internal/costfn"
	"convexcache/internal/multipool"
	"convexcache/internal/trace"
)

// Example assigns two tenants to separate pools and migrates one,
// illustrating the Section-5 future-work setting.
func Example() {
	costs := []costfn.Func{
		costfn.Monomial{C: 1, Beta: 2},
		costfn.Monomial{C: 1, Beta: 2},
	}
	sys, _ := multipool.New(multipool.Config{
		PoolSizes:  []int{2, 2},
		Costs:      costs,
		Assign:     []int{0, 1},
		SwitchCost: 5,
	})
	tr := trace.NewBuilder().
		Add(0, 1).Add(0, 2).Add(1, 100).Add(0, 1).Add(1, 100).
		MustBuild()
	res, _ := sys.Run(tr)
	fmt.Printf("misses: %v, migrations: %d\n", res.Misses, res.Migrations)
	fmt.Printf("total cost: %.0f\n", res.TotalCost())
	// Output:
	// misses: [2 1], migrations: 0
	// total cost: 5
}
