package multipool

import (
	"testing"

	"convexcache/internal/costfn"
)

func snap(assign []int, epochMisses, totalMisses []int64, switchCost float64) Snapshot {
	costs := make([]costfn.Func, len(assign))
	for i := range costs {
		costs[i] = costfn.Monomial{C: 1, Beta: 2}
	}
	return Snapshot{
		Assign:      assign,
		EpochMisses: epochMisses,
		TotalMisses: totalMisses,
		PoolSizes:   []int{10, 10},
		Costs:       costs,
		SwitchCost:  switchCost,
	}
}

func TestGreedyRebalancerMovesHeaviestFromHotPool(t *testing.T) {
	g := &GreedyRebalancer{}
	// Tenants 0,1 in pool 0 with heavy pressure; tenants 2,3 idle in pool 1.
	s := snap([]int{0, 0, 1, 1},
		[]int64{100, 80, 1, 1},
		[]int64{1000, 800, 10, 10},
		1)
	moves := g.Rebalance(s)
	if len(moves) != 1 {
		t.Fatalf("moves = %v", moves)
	}
	if moves[0].ToPool != 1 {
		t.Errorf("move target = %d, want cold pool 1", moves[0].ToPool)
	}
	// The heaviest tenant that is not the entire hot-pool load: tenant 0
	// has the largest pressure but moving it would just move the hotspot
	// only if it *is* the whole load; here both contribute, so tenant 0
	// (largest) moves.
	if moves[0].Tenant != 0 {
		t.Errorf("moved tenant %d, want 0", moves[0].Tenant)
	}
}

func TestGreedyRebalancerRespectsSwitchCost(t *testing.T) {
	g := &GreedyRebalancer{}
	// Pressure exists but the switching cost dwarfs the predicted gain.
	s := snap([]int{0, 0, 1, 1},
		[]int64{3, 2, 0, 0},
		[]int64{5, 4, 0, 0},
		1e12)
	if moves := g.Rebalance(s); len(moves) != 0 {
		t.Errorf("moved despite prohibitive switch cost: %v", moves)
	}
}

func TestGreedyRebalancerBalancedPoolsStay(t *testing.T) {
	g := &GreedyRebalancer{}
	s := snap([]int{0, 0, 1, 1},
		[]int64{50, 50, 50, 50},
		[]int64{500, 500, 500, 500},
		1)
	if moves := g.Rebalance(s); len(moves) != 0 {
		t.Errorf("moved on balanced load: %v", moves)
	}
}

func TestGreedyRebalancerSinglePoolNoop(t *testing.T) {
	g := &GreedyRebalancer{}
	s := snap([]int{0, 0}, []int64{100, 1}, []int64{100, 1}, 1)
	s.PoolSizes = []int{10}
	if moves := g.Rebalance(s); len(moves) != 0 {
		t.Errorf("moved with one pool: %v", moves)
	}
}

func TestGreedyRebalancerDoesNotMoveWholeLoad(t *testing.T) {
	g := &GreedyRebalancer{}
	// One tenant IS the whole hot pool: moving it only relocates the
	// hotspot, so the rebalancer must stay put.
	s := snap([]int{0, 1, 1, 1},
		[]int64{100, 0, 0, 0},
		[]int64{1000, 0, 0, 0},
		1)
	if moves := g.Rebalance(s); len(moves) != 0 {
		t.Errorf("moved a whole-load tenant: %v", moves)
	}
}

func TestGreedyRebalancerMaxMoves(t *testing.T) {
	g := &GreedyRebalancer{MaxMovesPerEpoch: 2}
	s := snap([]int{0, 0, 0, 1},
		[]int64{100, 90, 80, 0},
		[]int64{1000, 900, 800, 0},
		1)
	moves := g.Rebalance(s)
	if len(moves) == 0 || len(moves) > 2 {
		t.Errorf("moves = %v, want 1..2", moves)
	}
}
