package multipool

// CapacityDemand describes one tenant's claim on shared cache capacity for
// SplitCapacity: a predicted miss curve over candidate quotas, a marginal
// cost weight, and a reserve floor (Caching with Reserves: every tenant is
// guaranteed a minimum allocation regardless of demand).
type CapacityDemand struct {
	// Misses predicts the tenant's window misses at quota q pages. Must be
	// non-increasing in q for the greedy transfer to be exact; nil means the
	// tenant exerts no demand (treated as constant zero misses).
	Misses func(q int) float64
	// Weight scales predicted misses into cost — typically the tenant's
	// current marginal miss cost f'(total). Zero weight (e.g. no window
	// activity) makes the tenant a pure donor down to its floor.
	Weight float64
	// Floor is the minimum quota the split must respect.
	Floor int
}

// predictedCost is the weighted predicted miss cost of tenant d at quota q.
func (d CapacityDemand) predictedCost(q int) float64 {
	if d.Misses == nil || d.Weight <= 0 {
		return 0
	}
	return d.Weight * d.Misses(q)
}

// SplitCapacity re-splits k pages across tenants to reduce the predicted
// weighted miss cost Σ Weight_i · Misses_i(q_i), starting from the current
// split cur. The result always sums to exactly k and respects every floor
// (floors are satisfied first; if floors alone exceed k they are scaled
// back deterministically from the highest tenant id). From the projected
// start it performs single-page greedy transfers: the donor is the tenant
// whose last page carries the smallest weighted cost increase when taken,
// the recipient the tenant whose next page buys the largest decrease, and a
// page moves only while the recipient's gain strictly exceeds the donor's
// loss. Ties break on lowest tenant id, so the split is deterministic. With
// concave-decreasing miss curves (true of any MRC) the greedy walk reaches
// the weighted optimum; with arbitrary curves it still terminates within k
// transfers and never increases predicted cost.
func SplitCapacity(cur []int, k int, demands []CapacityDemand) []int {
	n := len(demands)
	if n == 0 || k < 0 {
		return nil
	}
	q := make([]int, n)
	total := 0
	for i := range q {
		if i < len(cur) && cur[i] > 0 {
			q[i] = cur[i]
		}
		if q[i] < demands[i].Floor {
			q[i] = demands[i].Floor
		}
		total += q[i]
	}
	// Project the start point onto the simplex {Σq = k, q_i ≥ floor_i}:
	// excess is trimmed from the highest ids first, shortfall granted to the
	// lowest ids first — arbitrary but fixed, so the walk is deterministic.
	for total > k {
		trimmed := false
		for i := n - 1; i >= 0 && total > k; i-- {
			if q[i] > demands[i].Floor {
				q[i]--
				total--
				trimmed = true
			}
		}
		if !trimmed {
			// Floors alone exceed k: shave floors from the highest ids.
			for i := n - 1; i >= 0 && total > k; i-- {
				for q[i] > 0 && total > k {
					q[i]--
					total--
				}
			}
		}
	}
	for i := 0; total < k; i = (i + 1) % n {
		q[i]++
		total++
	}
	// Greedy single-page transfers. Each iteration moves one page from the
	// cheapest donor to the most valuable recipient; at most k moves.
	for iter := 0; iter < k; iter++ {
		donor, donorLoss := -1, 0.0
		for i := range q {
			if q[i] <= demands[i].Floor || q[i] <= 0 {
				continue
			}
			loss := demands[i].predictedCost(q[i]-1) - demands[i].predictedCost(q[i])
			if loss < 0 {
				loss = 0
			}
			if donor < 0 || loss < donorLoss {
				donor, donorLoss = i, loss
			}
		}
		if donor < 0 {
			break
		}
		recip, recipGain := -1, 0.0
		for j := range q {
			if j == donor {
				continue
			}
			gain := demands[j].predictedCost(q[j]) - demands[j].predictedCost(q[j]+1)
			if gain > recipGain {
				recip, recipGain = j, gain
			}
		}
		if recip < 0 || recipGain <= donorLoss {
			break
		}
		q[donor]--
		q[recip]++
	}
	return q
}
