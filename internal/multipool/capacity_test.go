package multipool

import (
	"testing"

	"convexcache/internal/costfn"
	"convexcache/internal/trace"
	"convexcache/internal/workload"
)

// curveOf builds a simple non-increasing miss curve: base misses that decay
// linearly with quota until satisfied at sat pages.
func curveOf(base float64, sat int) func(int) float64 {
	return func(q int) float64 {
		if q >= sat {
			return 0
		}
		return base * float64(sat-q) / float64(sat)
	}
}

func sumInts(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestSplitCapacitySumsToKAndRespectsFloors(t *testing.T) {
	d := []CapacityDemand{
		{Misses: curveOf(1000, 50), Weight: 1, Floor: 4},
		{Misses: curveOf(10, 50), Weight: 1, Floor: 4},
		{Misses: nil, Weight: 0, Floor: 4},
	}
	q := SplitCapacity([]int{10, 10, 10}, 30, d)
	if sumInts(q) != 30 {
		t.Fatalf("split %v sums to %d, want 30", q, sumInts(q))
	}
	for i, v := range q {
		if v < d[i].Floor {
			t.Fatalf("split %v violates floor %d for tenant %d", q, d[i].Floor, i)
		}
	}
	if q[0] <= q[1] {
		t.Errorf("split %v: heavy tenant 0 should out-rank light tenant 1", q)
	}
	if q[2] != 4 {
		t.Errorf("split %v: zero-demand tenant should drain to floor 4", q)
	}
}

func TestSplitCapacityDeadTenantDrainsToFloor(t *testing.T) {
	// Tenant 1 had a large historical share but zero weight now (no window
	// activity): everything above its floor flows to the active tenant.
	d := []CapacityDemand{
		{Misses: curveOf(500, 100), Weight: 2, Floor: 2},
		{Misses: curveOf(500, 100), Weight: 0, Floor: 2},
	}
	q := SplitCapacity([]int{8, 56}, 64, d)
	if q[1] != 2 || q[0] != 62 {
		t.Fatalf("split %v, want dead tenant at floor [62 2]", q)
	}
}

func TestSplitCapacityDeterministicTies(t *testing.T) {
	d := []CapacityDemand{
		{Misses: curveOf(100, 40), Weight: 1},
		{Misses: curveOf(100, 40), Weight: 1},
		{Misses: curveOf(100, 40), Weight: 1},
	}
	first := SplitCapacity([]int{5, 20, 5}, 30, d)
	for i := 0; i < 10; i++ {
		again := SplitCapacity([]int{5, 20, 5}, 30, d)
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("run %d: split %v != first %v", i, again, first)
			}
		}
	}
	if sumInts(first) != 30 {
		t.Fatalf("split %v sums to %d", first, sumInts(first))
	}
}

func TestSplitCapacityFloorsExceedK(t *testing.T) {
	d := []CapacityDemand{
		{Misses: curveOf(10, 10), Weight: 1, Floor: 6},
		{Misses: curveOf(10, 10), Weight: 1, Floor: 6},
	}
	q := SplitCapacity(nil, 8, d)
	if sumInts(q) != 8 {
		t.Fatalf("split %v sums to %d, want 8 (floors scaled back)", q, sumInts(q))
	}
	for _, v := range q {
		if v < 0 {
			t.Fatalf("split %v has negative quota", q)
		}
	}
}

func TestSplitCapacityNeverIncreasesPredictedCost(t *testing.T) {
	d := []CapacityDemand{
		{Misses: curveOf(300, 64), Weight: 3, Floor: 1},
		{Misses: curveOf(150, 32), Weight: 1, Floor: 1},
		{Misses: curveOf(40, 16), Weight: 5, Floor: 1},
	}
	cost := func(q []int) float64 {
		total := 0.0
		for i := range q {
			total += d[i].predictedCost(q[i])
		}
		return total
	}
	cur := []int{16, 16, 16}
	q := SplitCapacity(cur, 48, d)
	if sumInts(q) != 48 {
		t.Fatalf("split %v sums to %d", q, sumInts(q))
	}
	if cost(q) > cost(cur)+1e-9 {
		t.Fatalf("split %v cost %g exceeds start cost %g", q, cost(q), cost(cur))
	}
}

// TestGreedyRebalancerDeadTenantZeroPressure pins the activity-decay fix: a
// tenant with a huge cumulative total but zero epoch misses must exert zero
// pressure, so it can never hold the hot pool hot by history alone.
func TestGreedyRebalancerDeadTenantZeroPressure(t *testing.T) {
	g := &GreedyRebalancer{}
	// Tenant 0: enormous history, silent this epoch. Tenant 1: modest live
	// load in pool 1. Without decay, tenant 0's stale pressure would mark
	// pool 0 hot and block any sensible decision.
	s := snap([]int{0, 1, 1, 1},
		[]int64{0, 5, 4, 3},
		[]int64{1_000_000, 50, 40, 30},
		1e9)
	moves := g.Rebalance(s)
	for _, m := range moves {
		if m.Tenant == 0 && m.ToPool == 0 {
			t.Fatalf("dead tenant attracted capacity: %v", moves)
		}
	}
}

// TestGreedyRebalancerReleasesDeadTenant pins the drift release: a tenant
// with history but no epoch activity sitting in the hot pool is migrated
// out so its pages stop occupying contested capacity.
func TestGreedyRebalancerReleasesDeadTenant(t *testing.T) {
	g := &GreedyRebalancer{MaxMovesPerEpoch: 2}
	// Pool 0 is hot (tenants 1,2 active); tenant 0 is dead weight parked
	// there. Pool 1 is cold.
	s := snap([]int{0, 0, 0, 1},
		[]int64{0, 100, 80, 1},
		[]int64{5000, 1000, 800, 10},
		1)
	moves := g.Rebalance(s)
	released := false
	for _, m := range moves {
		if m.Tenant == 0 {
			if m.ToPool != 1 {
				t.Fatalf("dead tenant released to pool %d, want cold pool 1", m.ToPool)
			}
			released = true
		}
	}
	if !released {
		t.Fatalf("dead tenant not released from hot pool: %v", moves)
	}
}

// TestSystemDeadTenantReleasesPagesWithinTwoEpochs is the end-to-end drift
// regression from the issue: tenant 1 floods pool 0 during phase one, then
// goes silent; within two rebalance epochs the system must migrate it off
// pool 0 (dropping its cached pages there) so tenant 0 can use the space.
func TestSystemDeadTenantReleasesPagesWithinTwoEpochs(t *testing.T) {
	const epoch = 2000
	z0, err := workload.NewZipf(3, 400, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	z1, err := workload.NewZipf(4, 400, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// Phase one: both tenants flood pool 0. The prohibitive switch cost
	// keeps the pressure-driven loop from migrating anyone, so both stay
	// where they started — the release path is the only mover.
	phase1, err := workload.Mix(7, []workload.TenantStream{
		{Tenant: 0, Stream: z0, Rate: 1},
		{Tenant: 1, Stream: z1, Rate: 1},
	}, 2*epoch)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(Config{
		PoolSizes:  []int{64, 64},
		Costs:      []costfn.Func{costfn.Monomial{C: 1, Beta: 2}, costfn.Monomial{C: 1, Beta: 2}},
		Assign:     []int{0, 0},
		SwitchCost: 1e18,
		Rebalancer: &GreedyRebalancer{},
		EpochLen:   epoch,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range phase1.Requests() {
		if err := sys.Serve(r); err != nil {
			t.Fatal(err)
		}
	}
	if a := sys.Assignment(); a[0] != 0 || a[1] != 0 {
		t.Fatalf("phase-one migrations should be blocked by switch cost, got %v", a)
	}
	// Phase two: tenant 1 goes completely silent; tenant 0 keeps missing on
	// pool 0, so pool 0 stays hot while pool 1 is idle. Two epochs of
	// silence must release tenant 1's claim on pool 0.
	b := trace.NewBuilder()
	z2, err := workload.NewZipf(9, 4000, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*epoch; i++ {
		b.Add(0, workload.PageOf(0, z2.Next()))
	}
	for _, r := range b.MustBuild().Requests() {
		if err := sys.Serve(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := sys.Assignment()[1]; got == 0 {
		t.Fatalf("dead tenant 1 still assigned to pool 0 after two silent epochs (assignment %v)", sys.Assignment())
	}
	if sys.Assignment()[0] != 0 {
		t.Fatalf("active tenant 0 should stay on pool 0, got %v", sys.Assignment())
	}
}
