package multipool

import (
	"convexcache/internal/costfn"
	"convexcache/internal/trace"
)

// GreedyRebalancer migrates the single most cost-pressured tenant away from
// the most loaded pool when the projected epoch saving exceeds the switching
// cost.
//
// Pressure of tenant i is its marginal miss cost at the current total,
// f_i'(total_i+1), times its epoch miss count — the first-order epoch cost
// attributable to i. Pressure therefore decays with activity: a tenant with
// zero misses in the closing epoch exerts zero pressure no matter how large
// its cumulative total is, so stale history can never keep attracting
// capacity. Pool load is the sum of its tenants' pressures. If the top
// tenant sits in the most loaded pool and a pool with load below half of it
// exists, moving the tenant is predicted to relieve contention; the move is
// proposed when pressure * Gain exceeds SwitchCost.
//
// Zero-pressure tenants are also actively drained: a tenant with history
// (TotalMisses > 0) but no epoch activity that sits in the hot pool is
// migrated to the cold pool, dropping its cold pages there — without this,
// a tenant whose traffic stopped entirely would hold hot-pool capacity
// forever, since the pressure-driven loop only ever moves active tenants.
type GreedyRebalancer struct {
	// Gain scales the predicted saving of one migration (fraction of the
	// tenant's epoch pressure recovered); default 0.5.
	Gain float64
	// MaxMovesPerEpoch caps migrations per epoch; default 1.
	MaxMovesPerEpoch int
}

// Rebalance implements Rebalancer.
func (g *GreedyRebalancer) Rebalance(s Snapshot) []Migration {
	gain := g.Gain
	if gain <= 0 {
		gain = 0.5
	}
	maxMoves := g.MaxMovesPerEpoch
	if maxMoves <= 0 {
		maxMoves = 1
	}
	nPools := len(s.PoolSizes)
	if nPools < 2 {
		return nil
	}
	pressure := make([]float64, len(s.Assign))
	poolLoad := make([]float64, nPools)
	for i := range s.Assign {
		if s.EpochMisses[i] == 0 {
			// Activity decay: no epoch misses, no pressure — the cumulative
			// total must not let an idle tenant keep weight.
			continue
		}
		pressure[i] = marginal(s.Costs, i, s.TotalMisses[i]) * float64(s.EpochMisses[i])
		poolLoad[s.Assign[i]] += pressure[i]
	}
	epochLoad := append([]float64(nil), poolLoad...)
	var moves []Migration
	for moveCount := 0; moveCount < maxMoves; moveCount++ {
		// Most and least loaded pools.
		hot, cold := 0, 0
		for j := 1; j < nPools; j++ {
			if poolLoad[j] > poolLoad[hot] {
				hot = j
			}
			if poolLoad[j] < poolLoad[cold] {
				cold = j
			}
		}
		if hot == cold || poolLoad[cold] >= poolLoad[hot]/2 {
			break
		}
		// Heaviest tenant in the hot pool, excluding the case where it IS
		// the whole load (moving it just moves the hotspot).
		best, bestP := -1, 0.0
		for i := range s.Assign {
			if s.Assign[i] != hot {
				continue
			}
			if pressure[i] > bestP && pressure[i] < poolLoad[hot] {
				best, bestP = i, pressure[i]
			}
		}
		if best < 0 || bestP*gain <= s.SwitchCost {
			break
		}
		moves = append(moves, Migration{Tenant: trace.Tenant(best), ToPool: cold})
		poolLoad[hot] -= bestP
		poolLoad[cold] += bestP
		pressure[best] = 0
	}
	// Drift release: while the epoch's hot/cold imbalance gate holds, dead
	// tenants (history but no epoch activity) parked in the hot pool
	// surrender their spot — the migration drops their cached pages,
	// returning the capacity to the tenants that still generate pressure.
	// Judged on the epoch's measured loads (not the loads as adjusted by the
	// speculative moves above) and NOT gated on SwitchCost: a dead tenant
	// holding hot capacity forever costs more than any one-time switch
	// charge. Bounded by maxMoves per epoch so a mass die-off drains over a
	// few epochs instead of migrating everything at once.
	hot, cold := 0, 0
	for j := 1; j < nPools; j++ {
		if epochLoad[j] > epochLoad[hot] {
			hot = j
		}
		if epochLoad[j] < epochLoad[cold] {
			cold = j
		}
	}
	if hot != cold && epochLoad[cold] < epochLoad[hot]/2 {
		released := 0
		for i := range s.Assign {
			if released >= maxMoves {
				break
			}
			if s.Assign[i] == hot && s.EpochMisses[i] == 0 && s.TotalMisses[i] > 0 {
				moves = append(moves, Migration{Tenant: trace.Tenant(i), ToPool: cold})
				released++
			}
		}
	}
	return moves
}

// marginal is the tenant's current marginal miss cost.
func marginal(costs []costfn.Func, i int, total int64) float64 {
	if i >= len(costs) || costs[i] == nil {
		return 1
	}
	return costfn.DiscreteDeriv(costs[i], float64(total))
}

// BalancedAssign spreads n tenants round-robin over the pools.
func BalancedAssign(n, pools int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i % pools
	}
	return out
}
