// Package multipool implements the future-work extension sketched in the
// paper's conclusion (Section 5): "the case of multiple memory pools (e.g.,
// each pool corresponds to a single physical server), where each user has
// to be assigned to a single pool, with potentially switching cost incurred
// for migrating users between servers."
//
// Each pool runs the paper's convex-cost algorithm over the tenants
// currently assigned to it. A Rebalancer decides, at epoch boundaries,
// whether to migrate tenants between pools; a migration drops the tenant's
// cached pages (cold restart on the target server) and charges a switching
// cost. Experiment E12 compares a single shared pool, a static multi-pool
// assignment, and greedy rebalancing.
package multipool

import (
	"errors"
	"fmt"

	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// Config configures a multi-pool system.
type Config struct {
	// PoolSizes lists the page capacity of each pool; all must be positive.
	PoolSizes []int
	// Costs holds per-tenant cost functions.
	Costs []costfn.Func
	// Assign maps each tenant to its initial pool index.
	Assign []int
	// SwitchCost is charged per migration.
	SwitchCost float64
	// Rebalancer, when non-nil, is consulted every EpochLen requests.
	Rebalancer Rebalancer
	// EpochLen is the rebalancing period in requests (0 disables).
	EpochLen int
	// AlgOptions tunes the per-pool caching algorithm; Costs is overridden
	// by Config.Costs and CountMisses is forced (pool state must survive
	// migrations without distorting counters).
	AlgOptions core.Options
}

// Rebalancer proposes tenant migrations at epoch boundaries.
type Rebalancer interface {
	// Rebalance inspects the epoch snapshot and returns migrations.
	Rebalance(s Snapshot) []Migration
}

// Migration moves one tenant to a target pool.
type Migration struct {
	// Tenant is the tenant to move.
	Tenant trace.Tenant
	// ToPool is the destination pool index.
	ToPool int
}

// Snapshot summarizes the state handed to a Rebalancer.
type Snapshot struct {
	// Assign is the current tenant-to-pool map.
	Assign []int
	// EpochMisses[i] counts tenant i's misses in the closing epoch.
	EpochMisses []int64
	// TotalMisses[i] counts tenant i's misses overall.
	TotalMisses []int64
	// PoolSizes echoes the configuration.
	PoolSizes []int
	// Costs echoes the tenant cost functions.
	Costs []costfn.Func
	// SwitchCost echoes the migration charge.
	SwitchCost float64
}

// pool is one physical server's cache.
type pool struct {
	size   int
	cache  map[trace.PageID]trace.Tenant
	policy *core.Fast
	step   int
}

// System is a running multi-pool simulation.
type System struct {
	cfg    Config
	pools  []*pool
	assign []int

	misses      []int64
	epochMisses []int64
	served      int
	migrations  int
}

// New validates the configuration and builds the system.
func New(cfg Config) (*System, error) {
	if len(cfg.PoolSizes) == 0 {
		return nil, errors.New("multipool: need at least one pool")
	}
	for j, s := range cfg.PoolSizes {
		if s <= 0 {
			return nil, fmt.Errorf("multipool: pool %d has non-positive size %d", j, s)
		}
	}
	if len(cfg.Assign) == 0 {
		return nil, errors.New("multipool: need an initial assignment")
	}
	for i, j := range cfg.Assign {
		if j < 0 || j >= len(cfg.PoolSizes) {
			return nil, fmt.Errorf("multipool: tenant %d assigned to invalid pool %d", i, j)
		}
	}
	opts := cfg.AlgOptions
	opts.Costs = cfg.Costs
	opts.CountMisses = true
	s := &System{
		cfg:         cfg,
		assign:      append([]int(nil), cfg.Assign...),
		misses:      make([]int64, len(cfg.Assign)),
		epochMisses: make([]int64, len(cfg.Assign)),
	}
	for _, size := range cfg.PoolSizes {
		s.pools = append(s.pools, &pool{
			size:   size,
			cache:  make(map[trace.PageID]trace.Tenant, size),
			policy: core.NewFast(opts),
		})
	}
	return s, nil
}

// Serve processes one request on the owner's pool.
func (s *System) Serve(r trace.Request) error {
	if int(r.Tenant) >= len(s.assign) {
		return fmt.Errorf("multipool: unknown tenant %d", r.Tenant)
	}
	p := s.pools[s.assign[r.Tenant]]
	p.step++
	if _, ok := p.cache[r.Page]; ok {
		p.policy.OnHit(p.step, r)
	} else {
		s.misses[r.Tenant]++
		s.epochMisses[r.Tenant]++
		if len(p.cache) >= p.size {
			victim := p.policy.Victim(p.step, r)
			if _, ok := p.cache[victim]; !ok {
				return fmt.Errorf("multipool: policy returned non-resident victim %d", victim)
			}
			delete(p.cache, victim)
			p.policy.OnEvict(p.step, victim)
		}
		p.cache[r.Page] = r.Tenant
		p.policy.OnInsert(p.step, r)
	}
	s.served++
	if s.cfg.Rebalancer != nil && s.cfg.EpochLen > 0 && s.served%s.cfg.EpochLen == 0 {
		s.runRebalance()
	}
	return nil
}

// runRebalance consults the rebalancer and applies its migrations.
func (s *System) runRebalance() {
	snap := Snapshot{
		Assign:      append([]int(nil), s.assign...),
		EpochMisses: append([]int64(nil), s.epochMisses...),
		TotalMisses: append([]int64(nil), s.misses...),
		PoolSizes:   append([]int(nil), s.cfg.PoolSizes...),
		Costs:       s.cfg.Costs,
		SwitchCost:  s.cfg.SwitchCost,
	}
	for _, m := range s.cfg.Rebalancer.Rebalance(snap) {
		s.migrate(m.Tenant, m.ToPool)
	}
	for i := range s.epochMisses {
		s.epochMisses[i] = 0
	}
}

// migrate moves the tenant, dropping its cached pages on the source pool.
func (s *System) migrate(t trace.Tenant, to int) {
	if int(t) >= len(s.assign) || to < 0 || to >= len(s.pools) {
		return
	}
	from := s.assign[t]
	if from == to {
		return
	}
	p := s.pools[from]
	for pg, owner := range p.cache {
		if owner == t {
			delete(p.cache, pg)
			p.policy.OnEvict(p.step, pg)
		}
	}
	s.assign[t] = to
	s.migrations++
}

// Result summarizes a finished run.
type Result struct {
	// Misses is per-tenant fetch counts.
	Misses []int64
	// Migrations counts applied tenant moves.
	Migrations int
	// CacheCost is sum_i f_i(misses_i).
	CacheCost float64
	// SwitchTotal is migrations * SwitchCost.
	SwitchTotal float64
}

// TotalCost is CacheCost + SwitchTotal.
func (r Result) TotalCost() float64 { return r.CacheCost + r.SwitchTotal }

// Run replays a whole trace through the system.
func (s *System) Run(tr *trace.Trace) (Result, error) {
	for _, r := range tr.Requests() {
		if err := s.Serve(r); err != nil {
			return Result{}, err
		}
	}
	return s.Result(), nil
}

// Result snapshots the accumulated accounting.
func (s *System) Result() Result {
	return Result{
		Misses:      append([]int64(nil), s.misses...),
		Migrations:  s.migrations,
		CacheCost:   sim.Cost(s.cfg.Costs, s.misses),
		SwitchTotal: float64(s.migrations) * s.cfg.SwitchCost,
	}
}

// Assignment returns the current tenant-to-pool map.
func (s *System) Assignment() []int { return append([]int(nil), s.assign...) }
