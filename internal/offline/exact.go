// Package offline computes offline comparators for the multi-tenant caching
// problem: the exact optimal solution b_i(sigma) on small instances via
// branch-and-bound (the quantity Theorems 1.1-1.3 compare against), and a
// brute-force reference used to validate the search.
//
// The objective minimized is the paper's sum_i f_i(misses_i) where misses
// are page fetches. Under the dummy-flush convention (trace.WithFlush) this
// coincides with the paper's eviction accounting.
package offline

import (
	"errors"
	"fmt"
	"math"

	"convexcache/internal/costfn"
	"convexcache/internal/trace"
)

// Limits bounds the exact search.
type Limits struct {
	// MaxNodes caps explored decision nodes; 0 means a conservative
	// default. When the cap is hit the result is the best incumbent and
	// Optimal is false.
	MaxNodes int64
}

// DefaultMaxNodes is the node budget used when Limits.MaxNodes is 0.
const DefaultMaxNodes = 5_000_000

// ExactResult is the outcome of an exact offline computation.
type ExactResult struct {
	// Misses is the optimal per-tenant fetch count vector.
	Misses []int64
	// Cost is sum_i f_i(Misses_i).
	Cost float64
	// Optimal is false when the node budget was exhausted before the
	// search completed.
	Optimal bool
	// Nodes counts explored decision nodes.
	Nodes int64
	// Schedule lists the optimal eviction decisions in trace order: at
	// step Schedule[i].Step the page Schedule[i].Page is evicted. Only
	// forced evictions appear (cold inserts into free space do not evict).
	Schedule []Eviction
}

// Eviction is one offline eviction decision.
type Eviction struct {
	// Step is the 0-based request index whose miss forced the eviction.
	Step int
	// Page is the evicted page.
	Page trace.PageID
}

// maxExactPages bounds the page universe so cache states fit in a uint64
// bitmask.
const maxExactPages = 64

// Exact computes the optimal offline eviction schedule for the trace with
// cache size k, minimizing sum_i f_i(misses_i). It requires at most 64
// distinct pages.
func Exact(tr *trace.Trace, k int, costs []costfn.Func, lim Limits) (ExactResult, error) {
	if k <= 0 {
		return ExactResult{}, errors.New("offline: cache size must be positive")
	}
	pages := tr.Pages()
	if len(pages) > maxExactPages {
		return ExactResult{}, fmt.Errorf("offline: exact search supports at most %d pages, got %d", maxExactPages, len(pages))
	}
	idx := make(map[trace.PageID]int, len(pages))
	for i, p := range pages {
		idx[p] = i
	}
	owner := make([]trace.Tenant, len(pages))
	for i, p := range pages {
		ow, _ := tr.Owner(p)
		owner[i] = ow
	}
	n := tr.NumTenants()
	cost := func(m []int64) float64 {
		total := 0.0
		for i, f := range costs {
			if i >= n {
				break
			}
			total += f.Value(float64(m[i]))
		}
		return total
	}
	// Suffix cold-miss lower bound: coldAfter[s][i] counts first-ever
	// occurrences of tenant-i pages at steps >= s.
	T := tr.Len()
	coldAfter := make([][]int64, T+1)
	coldAfter[T] = make([]int64, n)
	firstStep := make(map[trace.PageID]int, len(pages))
	for s, r := range tr.Requests() {
		if _, ok := firstStep[r.Page]; !ok {
			firstStep[r.Page] = s
		}
	}
	for s := T - 1; s >= 0; s-- {
		row := append([]int64(nil), coldAfter[s+1]...)
		r := tr.At(s)
		if firstStep[r.Page] == s {
			row[r.Tenant]++
		}
		coldAfter[s] = row
	}
	lowerBound := func(s int, m []int64) float64 {
		total := 0.0
		for i, f := range costs {
			if i >= n {
				break
			}
			total += f.Value(float64(m[i] + coldAfter[s][i]))
		}
		return total
	}
	// Next-use times for the Belady victim ordering heuristic.
	nextUse := make([][]int, T) // nextUse[s][pi] = next request step of page pi after s, or T+1
	{
		next := make([]int, len(pages))
		for i := range next {
			next[i] = T + 1
		}
		for s := T - 1; s >= 0; s-- {
			nextUse[s] = append([]int(nil), next...)
			next[idx[tr.At(s).Page]] = s
		}
	}

	lim.MaxNodes = max64(lim.MaxNodes, 0)
	budget := lim.MaxNodes
	if budget == 0 {
		budget = DefaultMaxNodes
	}

	// Incumbent from a greedy cost-aware Belady pass (fast, good upper
	// bound for pruning).
	bestMisses, bestCost, bestSched := greedyIncumbent(tr, k, costs, idx, owner, nextUse)

	// Dominance memo: per (step, cache mask), the Pareto set of miss
	// vectors already explored. A new state dominated componentwise by a
	// stored one cannot improve.
	type stateKey struct {
		step int
		mask uint64
	}
	memo := make(map[stateKey][][]int64)
	dominated := func(key stateKey, m []int64) bool {
		for _, old := range memo[key] {
			leq := true
			for i := range m {
				if old[i] > m[i] {
					leq = false
					break
				}
			}
			if leq {
				return true
			}
		}
		return false
	}
	store := func(key stateKey, m []int64) {
		kept := memo[key][:0]
		for _, old := range memo[key] {
			drop := true
			for i := range m {
				if old[i] < m[i] {
					drop = false
					break
				}
			}
			if !drop {
				kept = append(kept, old)
			}
		}
		memo[key] = append(kept, append([]int64(nil), m...))
	}

	var nodes int64
	exhausted := false
	var curSched []Eviction

	var rec func(s int, mask uint64, size int, m []int64)
	rec = func(s int, mask uint64, size int, m []int64) {
		if exhausted {
			return
		}
		// Advance through decision-free steps.
		for s < T {
			r := tr.At(s)
			pi := idx[r.Page]
			bit := uint64(1) << uint(pi)
			if mask&bit != 0 {
				s++ // hit
				continue
			}
			// Miss.
			m[r.Tenant]++
			defer func(i trace.Tenant) { m[i]-- }(r.Tenant)
			// The current miss is already counted in m, so the unavoidable
			// cold-miss suffix starts at s+1.
			if lowerBound(s+1, m) >= bestCost {
				return
			}
			if size < k {
				mask |= bit
				size++
				s++
				continue
			}
			// Full cache: decision point.
			key := stateKey{step: s, mask: mask}
			if dominated(key, m) {
				return
			}
			store(key, m)
			nodes++
			if nodes > budget {
				exhausted = true
				return
			}
			// Candidate victims ordered by farthest next use (Belady
			// heuristic) to find strong incumbents early.
			cands := victimOrder(mask, nextUse[s], pi)
			for _, v := range cands {
				vbit := uint64(1) << uint(v)
				curSched = append(curSched, Eviction{Step: s, Page: pages[v]})
				rec(s+1, (mask&^vbit)|bit, size, m)
				curSched = curSched[:len(curSched)-1]
				if exhausted {
					return
				}
			}
			return
		}
		// Trace exhausted: candidate solution.
		c := cost(m)
		if c < bestCost {
			bestCost = c
			copy(bestMisses, m)
			bestSched = append(bestSched[:0], curSched...)
		}
	}
	m := make([]int64, n)
	rec(0, 0, 0, m)

	return ExactResult{
		Misses:   bestMisses,
		Cost:     bestCost,
		Optimal:  !exhausted,
		Nodes:    nodes,
		Schedule: bestSched,
	}, nil
}

// victimOrder lists the cached page indices (excluding the incoming page)
// sorted by descending next use, never-used-again first.
func victimOrder(mask uint64, nextUse []int, incoming int) []int {
	var cands []int
	for pi := 0; pi < len(nextUse); pi++ {
		if pi == incoming {
			continue
		}
		if mask&(uint64(1)<<uint(pi)) != 0 {
			cands = append(cands, pi)
		}
	}
	// Insertion sort by descending nextUse (cache sizes are small here).
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && nextUse[cands[j]] > nextUse[cands[j-1]]; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	return cands
}

// greedyIncumbent runs a cost-aware Belady pass to seed the incumbent.
func greedyIncumbent(tr *trace.Trace, k int, costs []costfn.Func,
	idx map[trace.PageID]int, owner []trace.Tenant, nextUse [][]int) ([]int64, float64, []Eviction) {
	n := tr.NumTenants()
	m := make([]int64, n)
	pages := tr.Pages()
	var sched []Eviction
	mask := uint64(0)
	size := 0
	marginal := func(i trace.Tenant) float64 {
		if int(i) >= len(costs) {
			return 0
		}
		return costfn.DiscreteDeriv(costs[i], float64(m[i]))
	}
	for s := 0; s < tr.Len(); s++ {
		r := tr.At(s)
		pi := idx[r.Page]
		bit := uint64(1) << uint(pi)
		if mask&bit != 0 {
			continue
		}
		m[r.Tenant]++
		if size < k {
			mask |= bit
			size++
			continue
		}
		// Evict the resident page minimizing marginal / distance.
		best, bestScore := -1, math.Inf(1)
		for q := 0; q < len(owner); q++ {
			qbit := uint64(1) << uint(q)
			if mask&qbit == 0 || q == pi {
				continue
			}
			dist := float64(nextUse[s][q] - s)
			score := marginal(owner[q]) / dist
			if score < bestScore {
				best, bestScore = q, score
			}
		}
		sched = append(sched, Eviction{Step: s, Page: pages[best]})
		mask = (mask &^ (uint64(1) << uint(best))) | bit
	}
	total := 0.0
	for i, f := range costs {
		if i >= n {
			break
		}
		total += f.Value(float64(m[i]))
	}
	return m, total, sched
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
