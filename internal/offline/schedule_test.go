package offline

import (
	"testing"

	"convexcache/internal/costfn"
	"convexcache/internal/trace"
)

// replaySchedule simulates the trace following the given eviction schedule
// exactly and returns per-tenant misses, failing on any inconsistency
// (eviction of a non-resident page, overflow, or eviction at a non-miss
// step).
func replaySchedule(t *testing.T, tr *trace.Trace, k int, sched []Eviction) []int64 {
	t.Helper()
	byStep := make(map[int]trace.PageID, len(sched))
	for _, e := range sched {
		if _, dup := byStep[e.Step]; dup {
			t.Fatalf("two evictions at step %d", e.Step)
		}
		byStep[e.Step] = e.Page
	}
	cache := make(map[trace.PageID]bool, k)
	misses := make([]int64, tr.NumTenants())
	for s, r := range tr.Requests() {
		victim, hasEv := byStep[s]
		if cache[r.Page] {
			if hasEv {
				t.Fatalf("schedule evicts at hit step %d", s)
			}
			continue
		}
		misses[r.Tenant]++
		if hasEv {
			if !cache[victim] {
				t.Fatalf("step %d evicts non-resident page %d", s, victim)
			}
			delete(cache, victim)
		}
		cache[r.Page] = true
		if len(cache) > k {
			t.Fatalf("cache overflows at step %d", s)
		}
	}
	return misses
}

func TestExactScheduleReplaysToOptimalCost(t *testing.T) {
	costs := []costfn.Func{costfn.Monomial{C: 1, Beta: 2}, costfn.Linear{W: 2}}
	for seed := int64(0); seed < 8; seed++ {
		tr := randomTrace(200+seed, 2, 4, 22)
		k := 3
		res, err := Exact(tr, k, costs, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Optimal {
			t.Fatal("not solved")
		}
		misses := replaySchedule(t, tr, k, res.Schedule)
		for i := range misses {
			if misses[i] != res.Misses[i] {
				t.Fatalf("seed=%d: replayed misses %v != reported %v", seed, misses, res.Misses)
			}
		}
	}
}

func TestExactScheduleStepsAreMonotone(t *testing.T) {
	tr := randomTrace(3, 2, 4, 25)
	res, err := Exact(tr, 2, []costfn.Func{costfn.Linear{W: 1}, costfn.Linear{W: 1}}, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Schedule); i++ {
		if res.Schedule[i].Step <= res.Schedule[i-1].Step {
			t.Fatalf("schedule steps not increasing: %v", res.Schedule)
		}
	}
}

func TestExactScheduleEmptyWhenNoEvictions(t *testing.T) {
	tr := trace.NewBuilder().Add(0, 1).Add(0, 2).Add(0, 1).MustBuild()
	res, err := Exact(tr, 4, []costfn.Func{costfn.Linear{W: 1}}, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schedule) != 0 {
		t.Errorf("schedule = %v, want empty", res.Schedule)
	}
}
