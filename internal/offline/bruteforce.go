package offline

import (
	"errors"
	"fmt"

	"convexcache/internal/costfn"
	"convexcache/internal/trace"
)

// BruteForce exhaustively enumerates every eviction schedule and returns the
// optimum. It exists to validate Exact on tiny instances; complexity is
// k^(#forced evictions), so keep traces under ~20 requests.
func BruteForce(tr *trace.Trace, k int, costs []costfn.Func) (ExactResult, error) {
	if k <= 0 {
		return ExactResult{}, errors.New("offline: cache size must be positive")
	}
	pages := tr.Pages()
	if len(pages) > maxExactPages {
		return ExactResult{}, fmt.Errorf("offline: too many pages (%d)", len(pages))
	}
	idx := make(map[trace.PageID]int, len(pages))
	for i, p := range pages {
		idx[p] = i
	}
	n := tr.NumTenants()
	T := tr.Len()
	best := ExactResult{Cost: 0, Optimal: true}
	bestSet := false
	cost := func(m []int64) float64 {
		total := 0.0
		for i, f := range costs {
			if i >= n {
				break
			}
			total += f.Value(float64(m[i]))
		}
		return total
	}
	var nodes int64
	var rec func(s int, mask uint64, size int, m []int64)
	rec = func(s int, mask uint64, size int, m []int64) {
		nodes++
		if s == T {
			c := cost(m)
			if !bestSet || c < best.Cost {
				best.Cost = c
				best.Misses = append([]int64(nil), m...)
				bestSet = true
			}
			return
		}
		r := tr.At(s)
		pi := idx[r.Page]
		bit := uint64(1) << uint(pi)
		if mask&bit != 0 {
			rec(s+1, mask, size, m)
			return
		}
		m[r.Tenant]++
		if size < k {
			rec(s+1, mask|bit, size+1, m)
		} else {
			for q := 0; q < len(pages); q++ {
				qbit := uint64(1) << uint(q)
				if mask&qbit == 0 || q == pi {
					continue
				}
				rec(s+1, (mask&^qbit)|bit, size, m)
			}
		}
		m[r.Tenant]--
	}
	rec(0, 0, 0, make([]int64, n))
	best.Nodes = nodes
	return best, nil
}
