package offline

import (
	"math/rand"
	"testing"

	"convexcache/internal/costfn"
	"convexcache/internal/policy"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

func randomTrace(seed int64, tenants, pagesPer, length int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	b := trace.NewBuilder()
	for i := 0; i < length; i++ {
		tn := rng.Intn(tenants)
		b.Add(trace.Tenant(tn), trace.PageID(tn*100+rng.Intn(pagesPer)))
	}
	return b.MustBuild()
}

func seqTrace(pages ...int) *trace.Trace {
	b := trace.NewBuilder()
	for _, p := range pages {
		b.Add(0, trace.PageID(p))
	}
	return b.MustBuild()
}

func TestExactMatchesBruteForce(t *testing.T) {
	costSets := [][]costfn.Func{
		{costfn.Linear{W: 1}, costfn.Linear{W: 1}},
		{costfn.Linear{W: 1}, costfn.Linear{W: 5}},
		{costfn.Monomial{C: 1, Beta: 2}, costfn.Linear{W: 1}},
		{costfn.Monomial{C: 1, Beta: 2}, costfn.Monomial{C: 1, Beta: 3}},
	}
	for _, costs := range costSets {
		for seed := int64(0); seed < 10; seed++ {
			tr := randomTrace(seed, 2, 4, 14)
			for _, k := range []int{2, 3} {
				ex, err := Exact(tr, k, costs, Limits{})
				if err != nil {
					t.Fatal(err)
				}
				bf, err := BruteForce(tr, k, costs)
				if err != nil {
					t.Fatal(err)
				}
				if !ex.Optimal {
					t.Fatalf("seed=%d k=%d: exact not optimal within budget", seed, k)
				}
				if ex.Cost != bf.Cost {
					t.Errorf("seed=%d k=%d: exact cost %g != brute force %g (exact misses %v, bf %v)",
						seed, k, ex.Cost, bf.Cost, ex.Misses, bf.Misses)
				}
			}
		}
	}
}

func TestExactSingleTenantUnitCostMatchesBelady(t *testing.T) {
	// For one tenant with unit linear cost the optimum is Belady's MIN.
	for seed := int64(20); seed < 28; seed++ {
		tr := randomTrace(seed, 1, 6, 30)
		k := 3
		ex, err := Exact(tr, k, []costfn.Func{costfn.Linear{W: 1}}, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		res := sim.MustRun(tr, policy.NewBelady(), sim.Config{K: k})
		if ex.Cost != float64(res.TotalMisses()) {
			t.Errorf("seed=%d: exact %g != Belady misses %d", seed, ex.Cost, res.TotalMisses())
		}
	}
}

func TestExactNeverAboveAnyPolicy(t *testing.T) {
	costs := []costfn.Func{costfn.Monomial{C: 1, Beta: 2}, costfn.Linear{W: 2}}
	for seed := int64(50); seed < 56; seed++ {
		tr := randomTrace(seed, 2, 4, 25)
		k := 3
		ex, err := Exact(tr, k, costs, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if !ex.Optimal {
			t.Fatal("budget exhausted on tiny instance")
		}
		for _, p := range []sim.Policy{policy.NewLRU(), policy.NewFIFO(), policy.NewBelady(), policy.NewCostAwareBelady(costs)} {
			res := sim.MustRun(tr, p, sim.Config{K: k})
			if got := res.Cost(costs); got < ex.Cost-1e-9 {
				t.Errorf("seed=%d: %s cost %g below exact optimum %g", seed, p.Name(), got, ex.Cost)
			}
		}
	}
}

func TestExactHandExample(t *testing.T) {
	// Sequence 1 2 3 1 2 3 with k=2: OPT (Belady) misses = 3 cold + 1:
	// serve 1,2; 3 evicts (farthest next use among {1,2} is 2)...
	// OPT for cyclic 3-page scan with k=2 misses: cold 3, then each of
	// 1,2,3 can hit at most... known OPT = 4 misses? Check: after 1,2 in
	// cache, request 3: evict 2 keeping 1 -> 1 hits, request 2: evict 3
	// keeping... 2 misses (4th miss), keep {1,2}? evict 1? then 3 misses
	// again. Belady: at step 3 next uses: 1@3, 2@4 -> evict 2. 1 hits.
	// 2@4 miss: cache {1,3}, next uses 1@inf?... sequence ends: 1 never
	// again, 3@5. evict 1. cache {2,3}. 3 hits. Total misses = 4+... 1,2,3
	// cold (3), 2 again (4): total 4, hits 2.
	tr := seqTrace(1, 2, 3, 1, 2, 3)
	ex, err := Exact(tr, 2, []costfn.Func{costfn.Linear{W: 1}}, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Cost != 4 {
		t.Errorf("exact cost = %g, want 4", ex.Cost)
	}
}

func TestExactConvexityShiftsOptimum(t *testing.T) {
	// Two tenants alternately scanning: with symmetric linear costs the
	// optimum balances misses; with one steeply convex tenant, the optimum
	// must shift misses onto the linear tenant (its vector differs).
	b := trace.NewBuilder()
	for i := 0; i < 12; i++ {
		b.Add(0, trace.PageID(i%3))
		b.Add(1, trace.PageID(100+i%3))
	}
	tr := b.MustBuild()
	k := 3
	lin, err := Exact(tr, k, []costfn.Func{costfn.Linear{W: 1}, costfn.Linear{W: 1}}, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	conv, err := Exact(tr, k, []costfn.Func{costfn.Monomial{C: 1, Beta: 3}, costfn.Linear{W: 1}}, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if conv.Misses[0] > lin.Misses[0] {
		t.Errorf("steeper tenant-0 cost increased its misses: %v vs %v", conv.Misses, lin.Misses)
	}
}

func TestExactRespectsNodeBudget(t *testing.T) {
	tr := randomTrace(7, 2, 6, 60)
	res, err := Exact(tr, 3, []costfn.Func{costfn.Monomial{C: 1, Beta: 2}, costfn.Monomial{C: 1, Beta: 2}}, Limits{MaxNodes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Optimal {
		t.Error("claimed optimality with a 10-node budget on a 60-request trace")
	}
	// The incumbent must still be a valid, finite solution.
	if res.Cost <= 0 {
		t.Errorf("incumbent cost %g", res.Cost)
	}
}

func TestExactValidation(t *testing.T) {
	tr := seqTrace(1, 2)
	if _, err := Exact(tr, 0, nil, Limits{}); err == nil {
		t.Error("k=0 accepted")
	}
	big := trace.NewBuilder()
	for i := 0; i < 70; i++ {
		big.Add(0, trace.PageID(i))
	}
	if _, err := Exact(big.MustBuild(), 2, nil, Limits{}); err == nil {
		t.Error(">64 pages accepted")
	}
	if _, err := BruteForce(tr, 0, nil); err == nil {
		t.Error("brute force k=0 accepted")
	}
}

func TestExactColdMissFloor(t *testing.T) {
	tr := randomTrace(3, 2, 4, 20)
	ex, err := Exact(tr, 3, []costfn.Func{costfn.Linear{W: 1}, costfn.Linear{W: 1}}, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	stats := tr.ComputeStats()
	var total int64
	for _, m := range ex.Misses {
		total += m
	}
	if total < int64(stats.ColdMisses) {
		t.Errorf("optimal misses %d below cold floor %d", total, stats.ColdMisses)
	}
}
