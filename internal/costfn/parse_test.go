package costfn

import (
	"math"
	"strings"
	"testing"
)

func TestParseValidSpecs(t *testing.T) {
	cases := []struct {
		spec string
		x    float64
		want float64
	}{
		{"linear:2.5", 4, 10},
		{"monomial:1,2", 3, 9},
		{"monomial:2,3", 2, 16},
		{"poly:0,1,0.5", 2, 4},
		{"pwl:0,1;10,2", 15, 20},
		{"sla:100,0.1,5", 110, 60},
		{"expcap:1,10,30", 10, math.E - 1},
	}
	for _, tc := range cases {
		f, err := Parse(tc.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.spec, err)
			continue
		}
		if got := f.Value(tc.x); math.Abs(got-tc.want) > 1e-9*(1+math.Abs(tc.want)) {
			t.Errorf("Parse(%q).Value(%g) = %g, want %g", tc.spec, tc.x, got, tc.want)
		}
	}
}

func TestParseInvalidSpecs(t *testing.T) {
	bad := []string{
		"",
		"linear",         // no colon
		"linear:",        // no number
		"linear:0",       // non-positive weight
		"linear:1,2",     // too many fields
		"monomial:1",     // missing beta
		"monomial:1,0.5", // beta < 1
		"monomial:-1,2",  // negative coefficient
		"poly:1,2",       // non-zero constant
		"poly:0,-1",      // negative coefficient
		"pwl:0,1;0,2",    // non-increasing breakpoints
		"pwl:5,1",        // does not start at 0
		"pwl:0,2;5,1",    // decreasing slopes
		"pwl:0",          // malformed segment
		"sla:1,2",        // too few fields
		"sla:0,1,2",      // zero tolerance
		"expcap:0,1,1",   // non-positive A
		"expcap:1,2",     // too few fields
		"nosuch:1",       // unknown name
		"linear:abc",     // non-numeric
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", spec)
		}
	}
}

func TestParseRoundTripStrings(t *testing.T) {
	// String() output should mention the family name for debuggability.
	for spec, frag := range map[string]string{
		"linear:1":     "linear",
		"monomial:1,2": "monomial",
		"poly:0,1":     "poly",
		"pwl:0,1;5,2":  "pwl",
		"expcap:1,2,3": "expcap",
	} {
		f := MustParse(spec)
		if !strings.Contains(f.String(), frag) {
			t.Errorf("MustParse(%q).String() = %q, want substring %q", spec, f.String(), frag)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on bad spec did not panic")
		}
	}()
	MustParse("bogus:1")
}
