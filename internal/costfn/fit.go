package costfn

import (
	"errors"
	"sort"
)

// FitConvex fits a non-decreasing convex piecewise-linear cost function
// through (miss-count, penalty) samples by least squares, for calibrating
// an SLA curve from billing data. The fit is parametrized by per-segment
// slopes s_j = d_1 + ... + d_j with increments d_j >= 0, which makes the
// slope sequence non-negative and non-decreasing (hence the curve convex
// and increasing) by construction; the increments are optimized with
// projected gradient descent on the least-squares objective.
//
// Samples must contain at least two distinct non-negative x values; the
// returned function passes through (0, 0) as the model requires.
func FitConvex(xs, ys []float64, iters int) (PiecewiseLinear, error) {
	if len(xs) < 2 || len(xs) != len(ys) {
		return PiecewiseLinear{}, errors.New("costfn: fit needs >= 2 equal-length samples")
	}
	type pt struct{ x, y float64 }
	pts := make([]pt, 0, len(xs))
	for i := range xs {
		if xs[i] < 0 {
			return PiecewiseLinear{}, errors.New("costfn: fit samples must have x >= 0")
		}
		if xs[i] == 0 {
			continue // (0, y0) is forced to (0, 0) by the model
		}
		pts = append(pts, pt{xs[i], ys[i]})
	}
	if len(pts) < 2 {
		return PiecewiseLinear{}, errors.New("costfn: fit needs >= 2 samples with x > 0")
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a].x < pts[b].x })
	// Deduplicate x values by averaging y.
	dedup := pts[:0]
	for _, p := range pts {
		if len(dedup) > 0 && dedup[len(dedup)-1].x == p.x {
			dedup[len(dedup)-1].y = (dedup[len(dedup)-1].y + p.y) / 2
			continue
		}
		dedup = append(dedup, p)
	}
	pts = dedup
	if len(pts) < 2 {
		return PiecewiseLinear{}, errors.New("costfn: fit needs >= 2 distinct x > 0")
	}
	// Breakpoints: 0 and every sample x except the last (whose slope
	// extends to infinity). Segment j spans [X[j], X[j+1]).
	n := len(pts)
	breaks := make([]float64, n)
	breaks[0] = 0
	for j := 1; j < n; j++ {
		breaks[j] = pts[j-1].x
	}
	// Widths within each sample's reach: value at sample i is
	// sum_j s_j * overlap(i, j) where overlap is the length of segment j
	// below pts[i].x.
	overlap := func(i, j int) float64 {
		lo := breaks[j]
		hi := pts[i].x
		if j+1 < n && breaks[j+1] < hi {
			hi = breaks[j+1]
		}
		if hi <= lo {
			return 0
		}
		return hi - lo
	}
	// Value at sample i as a function of increments d: s_j = sum_{q<=j} d_q,
	// value_i = sum_j s_j overlap(i,j) = sum_q d_q * W(i,q) with
	// W(i,q) = sum_{j>=q} overlap(i,j).
	w := make([][]float64, n)
	for i := 0; i < n; i++ {
		w[i] = make([]float64, n)
		for q := 0; q < n; q++ {
			total := 0.0
			for j := q; j < n; j++ {
				total += overlap(i, j)
			}
			w[i][q] = total
		}
	}
	// Projected gradient descent on 1/2 sum_i (W_i . d - y_i)^2, d >= 0.
	if iters <= 0 {
		iters = 2000
	}
	d := make([]float64, n)
	// Initialize from the secant slopes' increments (clamped to >= 0).
	prevSlope := 0.0
	prevX, prevY := 0.0, 0.0
	for j := 0; j < n; j++ {
		slope := (pts[j].y - prevY) / (pts[j].x - prevX)
		inc := slope - prevSlope
		if inc < 0 {
			inc = 0
		}
		d[j] = inc
		prevSlope += inc
		prevX, prevY = pts[j].x, pts[j].y
	}
	// Lipschitz-ish step from the Gram diagonal.
	maxDiag := 0.0
	for q := 0; q < n; q++ {
		g := 0.0
		for i := 0; i < n; i++ {
			g += w[i][q] * w[i][q]
		}
		if g > maxDiag {
			maxDiag = g
		}
	}
	step := 1.0
	if maxDiag > 0 {
		step = 1 / (maxDiag * float64(n))
	}
	grad := make([]float64, n)
	for it := 0; it < iters; it++ {
		for q := range grad {
			grad[q] = 0
		}
		for i := 0; i < n; i++ {
			pred := 0.0
			for q := 0; q < n; q++ {
				pred += w[i][q] * d[q]
			}
			resid := pred - pts[i].y
			for q := 0; q < n; q++ {
				grad[q] += resid * w[i][q]
			}
		}
		for q := 0; q < n; q++ {
			d[q] -= step * grad[q]
			if d[q] < 0 {
				d[q] = 0
			}
		}
	}
	slopes := make([]float64, n)
	running := 0.0
	for j := 0; j < n; j++ {
		running += d[j]
		slopes[j] = running
	}
	return NewPiecewiseLinear(breaks, slopes)
}
