package costfn

import (
	"math"
	"testing"
)

// FuzzParse ensures the cost-spec parser never panics and that accepted
// functions satisfy the basic model contract at a few probe points.
func FuzzParse(f *testing.F) {
	f.Add("linear:2.5")
	f.Add("monomial:1,2")
	f.Add("poly:0,1,0.5")
	f.Add("pwl:0,1;10,2")
	f.Add("sla:100,0.1,5")
	f.Add("expcap:1,10,30")
	f.Add("nonsense")
	f.Add(":::")
	f.Fuzz(func(t *testing.T, spec string) {
		fn, err := Parse(spec)
		if err != nil {
			return
		}
		if v := fn.Value(0); math.Abs(v) > 1e-9 {
			t.Errorf("Parse(%q): f(0) = %g", spec, v)
		}
		for _, x := range []float64{0, 1, 10, 1000} {
			v := fn.Value(x)
			if math.IsNaN(v) {
				t.Errorf("Parse(%q): f(%g) is NaN", spec, x)
			}
			if v < -1e-9 {
				t.Errorf("Parse(%q): f(%g) = %g negative", spec, x, v)
			}
			d := fn.Deriv(x)
			if math.IsNaN(d) {
				t.Errorf("Parse(%q): f'(%g) is NaN", spec, x)
			}
		}
	})
}
