package costfn

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse builds a cost function from a compact spec string, used by the CLI
// tools and trace files. Supported forms:
//
//	linear:W                e.g. linear:2.5
//	monomial:C,BETA         e.g. monomial:1,2
//	poly:C0,C1,...          e.g. poly:0,1,0.5   (0.5x^2 + x)
//	pwl:X0,S0;X1,S1;...     e.g. pwl:0,1;100,10 (slope 1 until 100 misses)
//	sla:M0,CHEAP,STEEP      e.g. sla:100,0.1,5
//	expcap:A,B,CAP          e.g. expcap:1,50,400
func Parse(spec string) (Func, error) {
	name, rest, found := strings.Cut(spec, ":")
	if !found {
		return nil, fmt.Errorf("costfn: spec %q missing ':'", spec)
	}
	fields := func(s, sep string) ([]float64, error) {
		parts := strings.Split(s, sep)
		out := make([]float64, len(parts))
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("costfn: bad number %q in spec %q", p, spec)
			}
			out[i] = v
		}
		return out, nil
	}
	switch name {
	case "linear":
		v, err := fields(rest, ",")
		if err != nil {
			return nil, err
		}
		if len(v) != 1 || v[0] <= 0 {
			return nil, fmt.Errorf("costfn: linear wants one positive weight, got %q", rest)
		}
		return Linear{W: v[0]}, nil
	case "monomial":
		v, err := fields(rest, ",")
		if err != nil {
			return nil, err
		}
		if len(v) != 2 || v[0] <= 0 || v[1] < 1 {
			return nil, fmt.Errorf("costfn: monomial wants C>0,BETA>=1, got %q", rest)
		}
		return Monomial{C: v[0], Beta: v[1]}, nil
	case "poly":
		v, err := fields(rest, ",")
		if err != nil {
			return nil, err
		}
		return NewPolynomial(v...)
	case "pwl":
		var xs, ss []float64
		for _, seg := range strings.Split(rest, ";") {
			v, err := fields(seg, ",")
			if err != nil {
				return nil, err
			}
			if len(v) != 2 {
				return nil, fmt.Errorf("costfn: pwl segment %q wants X,S", seg)
			}
			xs = append(xs, v[0])
			ss = append(ss, v[1])
		}
		return NewPiecewiseLinear(xs, ss)
	case "sla":
		v, err := fields(rest, ",")
		if err != nil {
			return nil, err
		}
		if len(v) != 3 {
			return nil, fmt.Errorf("costfn: sla wants M0,CHEAP,STEEP, got %q", rest)
		}
		return SLARefund(v[0], v[1], v[2])
	case "expcap":
		v, err := fields(rest, ",")
		if err != nil {
			return nil, err
		}
		if len(v) != 3 || v[0] <= 0 || v[1] <= 0 || v[2] <= 0 {
			return nil, fmt.Errorf("costfn: expcap wants A,B,CAP all positive, got %q", rest)
		}
		return ExpCapped{A: v[0], B: v[1], Cap: v[2]}, nil
	default:
		return nil, fmt.Errorf("costfn: unknown cost function %q", name)
	}
}

// MustParse is Parse that panics on error; for tests and example code.
func MustParse(spec string) Func {
	f, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return f
}
