// Package costfn provides the per-tenant cost functions f_i of the
// convex-cost caching model of Menache & Singh (SPAA 2015).
//
// A cost function maps a miss count x >= 0 to a non-negative cost f(x) with
// f(0) = 0. The paper's guarantees (Theorem 1.1, Theorem 1.3) require f to be
// differentiable, convex and increasing; the algorithm itself (Section 2.5)
// runs with arbitrary functions, using discrete differences in place of
// derivatives. This package supplies both: every Func exposes an analytic
// derivative, and DiscreteDeriv gives the finite difference f(m+1)-f(m).
//
// The competitive ratio of the paper depends on the curvature constant
//
//	alpha = sup_x x*f'(x) / f(x),
//
// exposed analytically where known (Alpha) and numerically for arbitrary
// functions (NumericAlpha).
package costfn

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Func is a tenant cost function f with f(0) = 0.
//
// Implementations must be non-negative and non-decreasing on x >= 0. The
// theoretical guarantees additionally need convexity; IsConvexOn provides a
// numeric check for user-supplied functions.
type Func interface {
	// Value returns f(x) for x >= 0.
	Value(x float64) float64
	// Deriv returns f'(x) for x >= 0. For non-differentiable functions it
	// returns a subgradient (the right derivative).
	Deriv(x float64) float64
	// String returns a short human-readable description.
	String() string
}

// AlphaBounded is implemented by cost functions whose curvature constant
// alpha = sup_x x f'(x)/f(x) is known in closed form.
type AlphaBounded interface {
	// Alpha returns the curvature constant. For a degree-beta polynomial
	// with positive coefficients this is beta (Claim 2.3 of the paper).
	Alpha() float64
}

// DiscreteDeriv returns the finite difference f(m+1) - f(m), the marginal
// cost of the (m+1)-st miss. Section 2.5 of the paper notes the algorithm
// may use this in place of the analytic derivative, which also covers
// non-differentiable and non-continuous cost functions.
func DiscreteDeriv(f Func, m float64) float64 {
	return f.Value(m+1) - f.Value(m)
}

// Linear is the weighted-caching cost f(x) = w*x (Young 1994). Its curvature
// constant is exactly 1, recovering the classical k-competitive setting.
type Linear struct {
	// W is the per-miss weight; must be positive.
	W float64
}

// Value returns w*x.
func (l Linear) Value(x float64) float64 { return l.W * x }

// Deriv returns w.
func (l Linear) Deriv(x float64) float64 { return l.W }

// Alpha returns 1: x*(w)/(w*x) = 1 for all x > 0.
func (l Linear) Alpha() float64 { return 1 }

func (l Linear) String() string { return fmt.Sprintf("linear(w=%g)", l.W) }

// Monomial is f(x) = c * x^beta with beta >= 1, the family of Corollary 1.2.
type Monomial struct {
	// C is the positive leading coefficient.
	C float64
	// Beta is the exponent; must be >= 1 for convexity.
	Beta float64
}

// Value returns c*x^beta.
func (m Monomial) Value(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return m.C * math.Pow(x, m.Beta)
}

// Deriv returns c*beta*x^(beta-1).
func (m Monomial) Deriv(x float64) float64 {
	if x <= 0 {
		if m.Beta == 1 {
			return m.C
		}
		return 0
	}
	if m.Beta == 2 {
		// math.Pow(x, 1) == x exactly (a documented special case), so the
		// quadratic family — the common SLA shape on the eviction hot path —
		// skips the Pow call without changing a single bit of the result.
		return m.C * m.Beta * x
	}
	return m.C * m.Beta * math.Pow(x, m.Beta-1)
}

// Alpha returns beta: x * c beta x^(beta-1) / (c x^beta) = beta.
func (m Monomial) Alpha() float64 { return m.Beta }

func (m Monomial) String() string { return fmt.Sprintf("monomial(c=%g,beta=%g)", m.C, m.Beta) }

// Quadratic returns the convenience monomial c*x^2.
func Quadratic(c float64) Monomial { return Monomial{C: c, Beta: 2} }

// Cubic returns the convenience monomial c*x^3.
func Cubic(c float64) Monomial { return Monomial{C: c, Beta: 3} }

// Polynomial is f(x) = sum_d Coef[d] * x^d with non-negative coefficients
// and Coef[0] = 0 (so that f(0)=0). By Claim 2.3 of the paper its curvature
// constant is the degree.
type Polynomial struct {
	// Coef[d] is the coefficient of x^d. Coef[0] must be 0 and all
	// coefficients must be non-negative for the convexity guarantee.
	Coef []float64
}

// NewPolynomial validates and constructs a Polynomial.
func NewPolynomial(coef ...float64) (Polynomial, error) {
	if len(coef) == 0 {
		return Polynomial{}, errors.New("costfn: polynomial needs at least one coefficient")
	}
	if coef[0] != 0 {
		return Polynomial{}, errors.New("costfn: polynomial constant term must be 0 (f(0)=0)")
	}
	for d, c := range coef {
		if c < 0 {
			return Polynomial{}, fmt.Errorf("costfn: polynomial coefficient of x^%d is negative", d)
		}
	}
	return Polynomial{Coef: coef}, nil
}

// Value evaluates the polynomial by Horner's rule.
func (p Polynomial) Value(x float64) float64 {
	v := 0.0
	for d := len(p.Coef) - 1; d >= 0; d-- {
		v = v*x + p.Coef[d]
	}
	return v
}

// Deriv evaluates the derivative polynomial.
func (p Polynomial) Deriv(x float64) float64 {
	v := 0.0
	for d := len(p.Coef) - 1; d >= 1; d-- {
		v = v*x + float64(d)*p.Coef[d]
	}
	return v
}

// Alpha returns the degree of the polynomial (the largest d with a non-zero
// coefficient), per Claim 2.3.
func (p Polynomial) Alpha() float64 {
	for d := len(p.Coef) - 1; d >= 1; d-- {
		if p.Coef[d] > 0 {
			return float64(d)
		}
	}
	return 1
}

func (p Polynomial) String() string {
	var parts []string
	for d, c := range p.Coef {
		if c != 0 {
			parts = append(parts, fmt.Sprintf("%gx^%d", c, d))
		}
	}
	if len(parts) == 0 {
		return "poly(0)"
	}
	return "poly(" + strings.Join(parts, "+") + ")"
}

// PiecewiseLinear is a convex piecewise-linear cost, the paper's motivating
// SLA shape: "a user can tolerate up to around M misses ... any number of
// misses greater than that will result in substantial degradation". It is
// defined by breakpoints 0 = X0 < X1 < ... and slopes S0 <= S1 <= ...; on
// [X_j, X_{j+1}) the slope is S_j. Non-decreasing slopes make it convex.
type PiecewiseLinear struct {
	// X holds the breakpoints; X[0] must be 0.
	X []float64
	// S holds the slopes, len(S) == len(X); S must be non-decreasing and
	// non-negative.
	S []float64
}

// NewPiecewiseLinear validates breakpoints and slopes and constructs the
// function.
func NewPiecewiseLinear(x, s []float64) (PiecewiseLinear, error) {
	if len(x) == 0 || len(x) != len(s) {
		return PiecewiseLinear{}, errors.New("costfn: piecewise-linear needs equal-length non-empty breakpoints and slopes")
	}
	if x[0] != 0 {
		return PiecewiseLinear{}, errors.New("costfn: first breakpoint must be 0")
	}
	for i := 1; i < len(x); i++ {
		if x[i] <= x[i-1] {
			return PiecewiseLinear{}, fmt.Errorf("costfn: breakpoints must be strictly increasing (X[%d]=%g <= X[%d]=%g)", i, x[i], i-1, x[i-1])
		}
	}
	for i, si := range s {
		if si < 0 {
			return PiecewiseLinear{}, fmt.Errorf("costfn: slope S[%d]=%g is negative", i, si)
		}
		if i > 0 && si < s[i-1] {
			return PiecewiseLinear{}, fmt.Errorf("costfn: slopes must be non-decreasing for convexity (S[%d]=%g < S[%d]=%g)", i, si, i-1, s[i-1])
		}
	}
	return PiecewiseLinear{X: x, S: s}, nil
}

// SLARefund builds the canonical two-piece SLA shape: misses up to the
// tolerance m0 cost `cheap` each, misses beyond m0 cost `steep` each.
func SLARefund(m0, cheap, steep float64) (PiecewiseLinear, error) {
	if m0 <= 0 {
		return PiecewiseLinear{}, errors.New("costfn: SLA tolerance must be positive")
	}
	return NewPiecewiseLinear([]float64{0, m0}, []float64{cheap, steep})
}

// segment returns the index j such that x lies in [X[j], X[j+1]).
func (p PiecewiseLinear) segment(x float64) int {
	// sort.SearchFloat64s returns the insertion point; we want the last
	// breakpoint <= x.
	j := sort.SearchFloat64s(p.X, x)
	if j < len(p.X) && p.X[j] == x {
		return j
	}
	return j - 1
}

// Value integrates the slopes up to x.
func (p PiecewiseLinear) Value(x float64) float64 {
	if x <= 0 {
		return 0
	}
	v := 0.0
	for j := 0; j < len(p.X); j++ {
		hi := x
		if j+1 < len(p.X) && p.X[j+1] < x {
			hi = p.X[j+1]
		}
		if hi > p.X[j] {
			v += p.S[j] * (hi - p.X[j])
		}
		if hi == x {
			break
		}
	}
	return v
}

// Deriv returns the right derivative (the slope of the segment containing x).
func (p PiecewiseLinear) Deriv(x float64) float64 {
	if x < 0 {
		x = 0
	}
	j := p.segment(x)
	if j < 0 {
		j = 0
	}
	if j >= len(p.S) {
		j = len(p.S) - 1
	}
	return p.S[j]
}

// Alpha computes the curvature constant of the piecewise-linear function.
// The supremum of x f'(x)/f(x) over a convex piecewise-linear f is attained
// at (the right limit of) a breakpoint, so a finite scan suffices; the final
// segment contributes its limit as x -> inf, which is S_last * x / f(x) -> 1
// relative growth, evaluated in the limit.
func (p PiecewiseLinear) Alpha() float64 {
	alpha := 1.0
	for j := 1; j < len(p.X); j++ {
		x := p.X[j]
		fx := p.Value(x)
		if fx > 0 {
			// Right derivative at the breakpoint is S[j].
			if a := x * p.S[j] / fx; a > alpha {
				alpha = a
			}
		}
	}
	return alpha
}

func (p PiecewiseLinear) String() string {
	return fmt.Sprintf("pwl(x=%v,s=%v)", p.X, p.S)
}

// Scaled multiplies an inner cost function by a positive constant. Scaling
// does not change the curvature constant.
type Scaled struct {
	// C is the positive scale factor.
	C float64
	// F is the inner function.
	F Func
}

// Value returns C*F(x).
func (s Scaled) Value(x float64) float64 { return s.C * s.F.Value(x) }

// Deriv returns C*F'(x).
func (s Scaled) Deriv(x float64) float64 { return s.C * s.F.Deriv(x) }

// Alpha forwards the inner function's curvature constant when known.
func (s Scaled) Alpha() float64 {
	if ab, ok := s.F.(AlphaBounded); ok {
		return ab.Alpha()
	}
	return math.NaN()
}

func (s Scaled) String() string { return fmt.Sprintf("%g*%s", s.C, s.F) }

// Sum is the pointwise sum of convex cost functions, itself convex with
// curvature constant at most the max of the summands'.
type Sum struct {
	// Fs are the summands; must be non-empty.
	Fs []Func
}

// Value returns sum of F(x).
func (s Sum) Value(x float64) float64 {
	v := 0.0
	for _, f := range s.Fs {
		v += f.Value(x)
	}
	return v
}

// Deriv returns sum of F'(x).
func (s Sum) Deriv(x float64) float64 {
	v := 0.0
	for _, f := range s.Fs {
		v += f.Deriv(x)
	}
	return v
}

// Alpha returns the max curvature constant of the summands when all are
// known, which upper-bounds the sum's constant.
func (s Sum) Alpha() float64 {
	a := 0.0
	for _, f := range s.Fs {
		ab, ok := f.(AlphaBounded)
		if !ok {
			return math.NaN()
		}
		if v := ab.Alpha(); v > a {
			a = v
		}
	}
	return a
}

func (s Sum) String() string {
	parts := make([]string, len(s.Fs))
	for i, f := range s.Fs {
		parts[i] = f.String()
	}
	return "sum(" + strings.Join(parts, "+") + ")"
}

// ExpCapped is f(x) = a*(e^(min(x,cap)/b) - 1) + slope continuation past the
// cap. The exponential has unbounded curvature, so a cap keeps alpha finite
// while modeling "explosive" SLA penalties: beyond Cap the function continues
// linearly with the slope at the cap, preserving convexity and
// differentiability (C^1).
type ExpCapped struct {
	// A scales the exponential; must be positive.
	A float64
	// B is the e-folding scale; must be positive.
	B float64
	// Cap is where the exponential hands over to a linear tail.
	Cap float64
}

// Value evaluates the capped exponential.
func (e ExpCapped) Value(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x <= e.Cap {
		return e.A * (math.Exp(x/e.B) - 1)
	}
	atCap := e.A * (math.Exp(e.Cap/e.B) - 1)
	slope := e.A / e.B * math.Exp(e.Cap/e.B)
	return atCap + slope*(x-e.Cap)
}

// Deriv evaluates the derivative of the capped exponential.
func (e ExpCapped) Deriv(x float64) float64 {
	if x < 0 {
		x = 0
	}
	if x <= e.Cap {
		return e.A / e.B * math.Exp(x/e.B)
	}
	return e.A / e.B * math.Exp(e.Cap/e.B)
}

func (e ExpCapped) String() string {
	return fmt.Sprintf("expcap(a=%g,b=%g,cap=%g)", e.A, e.B, e.Cap)
}

// NumericAlpha estimates alpha = sup_{0 < x <= xmax} x f'(x)/f(x) on a
// geometric-plus-linear grid. It is exact for monomials and a close lower
// estimate for general smooth functions; use it for cost functions that do
// not implement AlphaBounded.
func NumericAlpha(f Func, xmax float64) float64 {
	if xmax <= 0 {
		return 1
	}
	best := 0.0
	// Linear sweep of integer-ish points plus a fine geometric sweep near 0,
	// where piecewise shapes often attain the supremum.
	probe := func(x float64) {
		fx := f.Value(x)
		if fx <= 0 {
			return
		}
		if a := x * f.Deriv(x) / fx; a > best {
			best = a
		}
	}
	for x := xmax / 1024; x <= xmax; x *= 1.05 {
		probe(x)
	}
	steps := 512
	for i := 1; i <= steps; i++ {
		probe(xmax * float64(i) / float64(steps))
	}
	if best < 1 {
		// Any increasing f with f(0)=0 has sup x f'/f >= 1 (attained in the
		// limit for concave-ish numerics); clamp to the theoretical floor.
		best = 1
	}
	return best
}

// EffectiveAlpha returns the curvature constant analytically when available
// and falls back to NumericAlpha over (0, xmax] otherwise.
func EffectiveAlpha(f Func, xmax float64) float64 {
	if ab, ok := f.(AlphaBounded); ok {
		if a := ab.Alpha(); !math.IsNaN(a) {
			return a
		}
	}
	return NumericAlpha(f, xmax)
}

// IsConvexOn numerically checks midpoint convexity of f on [0, xmax] at the
// given number of sample points. It returns a descriptive error at the first
// violation. Tolerance is relative to the magnitude of the values compared.
func IsConvexOn(f Func, xmax float64, samples int) error {
	if samples < 3 {
		samples = 3
	}
	h := xmax / float64(samples-1)
	for i := 1; i < samples-1; i++ {
		x := float64(i) * h
		mid := f.Value(x)
		avg := (f.Value(x-h) + f.Value(x+h)) / 2
		tol := 1e-9 * (1 + math.Abs(avg))
		if mid > avg+tol {
			return fmt.Errorf("costfn: %s violates convexity at x=%g: f(x)=%g > avg(f(x±h))=%g", f, x, mid, avg)
		}
	}
	return nil
}

// IsIncreasingOn numerically checks that f is non-decreasing on [0, xmax].
func IsIncreasingOn(f Func, xmax float64, samples int) error {
	if samples < 2 {
		samples = 2
	}
	h := xmax / float64(samples-1)
	prev := f.Value(0)
	for i := 1; i < samples; i++ {
		x := float64(i) * h
		v := f.Value(x)
		if v < prev-1e-9*(1+math.Abs(prev)) {
			return fmt.Errorf("costfn: %s decreases at x=%g: f=%g < previous %g", f, x, v, prev)
		}
		prev = v
	}
	return nil
}

// Validate runs the model checks required by Theorem 1.1 on f over [0, xmax]:
// f(0) = 0, non-negative, non-decreasing and convex.
func Validate(f Func, xmax float64) error {
	if v := f.Value(0); math.Abs(v) > 1e-12 {
		return fmt.Errorf("costfn: %s has f(0)=%g, want 0", f, v)
	}
	if v := f.Value(xmax); v < 0 {
		return fmt.Errorf("costfn: %s is negative at xmax: f(%g)=%g", f, xmax, v)
	}
	if err := IsIncreasingOn(f, xmax, 257); err != nil {
		return err
	}
	return IsConvexOn(f, xmax, 257)
}
