package costfn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

// numDeriv is a central finite difference used to cross-check Deriv.
func numDeriv(f Func, x float64) float64 {
	h := 1e-6 * (1 + math.Abs(x))
	return (f.Value(x+h) - f.Value(x-h)) / (2 * h)
}

func TestLinearBasics(t *testing.T) {
	f := Linear{W: 2.5}
	if got := f.Value(0); got != 0 {
		t.Fatalf("f(0) = %g, want 0", got)
	}
	if got := f.Value(4); got != 10 {
		t.Fatalf("f(4) = %g, want 10", got)
	}
	if got := f.Deriv(123); got != 2.5 {
		t.Fatalf("f'(123) = %g, want 2.5", got)
	}
	if got := f.Alpha(); got != 1 {
		t.Fatalf("alpha = %g, want 1", got)
	}
}

func TestMonomialValueDeriv(t *testing.T) {
	for _, tc := range []struct {
		c, beta, x, want float64
	}{
		{1, 2, 3, 9},
		{2, 3, 2, 16},
		{1, 1, 7, 7},
		{0.5, 2, 4, 8},
	} {
		f := Monomial{C: tc.c, Beta: tc.beta}
		if got := f.Value(tc.x); !almostEq(got, tc.want, 1e-12) {
			t.Errorf("%v.Value(%g) = %g, want %g", f, tc.x, got, tc.want)
		}
		if got, want := f.Deriv(tc.x), numDeriv(f, tc.x); !almostEq(got, want, 1e-4) {
			t.Errorf("%v.Deriv(%g) = %g, numeric %g", f, tc.x, got, want)
		}
	}
}

func TestMonomialAtZero(t *testing.T) {
	f := Monomial{C: 3, Beta: 2}
	if got := f.Value(0); got != 0 {
		t.Fatalf("f(0) = %g, want 0", got)
	}
	if got := f.Deriv(0); got != 0 {
		t.Fatalf("f'(0) = %g, want 0 for beta>1", got)
	}
	g := Monomial{C: 3, Beta: 1}
	if got := g.Deriv(0); got != 3 {
		t.Fatalf("linear monomial f'(0) = %g, want 3", got)
	}
}

func TestMonomialNegativeInputClamps(t *testing.T) {
	f := Monomial{C: 1, Beta: 2}
	if got := f.Value(-5); got != 0 {
		t.Fatalf("f(-5) = %g, want 0", got)
	}
}

func TestMonomialAlphaIsBeta(t *testing.T) {
	for _, beta := range []float64{1, 1.5, 2, 3, 4} {
		f := Monomial{C: 2, Beta: beta}
		if got := f.Alpha(); got != beta {
			t.Errorf("alpha(beta=%g) = %g", beta, got)
		}
		// Numeric alpha must agree.
		if got := NumericAlpha(f, 1000); !almostEq(got, beta, 1e-3) {
			t.Errorf("numeric alpha(beta=%g) = %g", beta, got)
		}
	}
}

func TestPolynomialConstruction(t *testing.T) {
	if _, err := NewPolynomial(); err == nil {
		t.Error("empty polynomial accepted")
	}
	if _, err := NewPolynomial(1, 2); err == nil {
		t.Error("non-zero constant term accepted")
	}
	if _, err := NewPolynomial(0, -1); err == nil {
		t.Error("negative coefficient accepted")
	}
	p, err := NewPolynomial(0, 1, 0.5)
	if err != nil {
		t.Fatalf("NewPolynomial: %v", err)
	}
	if got := p.Value(2); !almostEq(got, 4, 1e-12) { // 2 + 0.5*4
		t.Errorf("p(2) = %g, want 4", got)
	}
	if got, want := p.Deriv(2), 1+2*0.5*2.0; !almostEq(got, want, 1e-12) {
		t.Errorf("p'(2) = %g, want %g", got, want)
	}
	if got := p.Alpha(); got != 2 {
		t.Errorf("alpha = %g, want degree 2", got)
	}
}

func TestPolynomialDerivMatchesNumeric(t *testing.T) {
	p, err := NewPolynomial(0, 3, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0.5; x < 20; x += 1.3 {
		if got, want := p.Deriv(x), numDeriv(p, x); !almostEq(got, want, 1e-4) {
			t.Errorf("p'(%g) = %g, numeric %g", x, got, want)
		}
	}
}

func TestPiecewiseLinearValidation(t *testing.T) {
	if _, err := NewPiecewiseLinear(nil, nil); err == nil {
		t.Error("empty pwl accepted")
	}
	if _, err := NewPiecewiseLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("pwl not starting at 0 accepted")
	}
	if _, err := NewPiecewiseLinear([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("non-increasing breakpoints accepted")
	}
	if _, err := NewPiecewiseLinear([]float64{0, 5}, []float64{2, 1}); err == nil {
		t.Error("decreasing slopes (non-convex) accepted")
	}
	if _, err := NewPiecewiseLinear([]float64{0, 5}, []float64{-1, 1}); err == nil {
		t.Error("negative slope accepted")
	}
}

func TestPiecewiseLinearValueAndDeriv(t *testing.T) {
	f, err := NewPiecewiseLinear([]float64{0, 10, 20}, []float64{1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, v, d float64 }{
		{0, 0, 1},
		{5, 5, 1},
		{10, 10, 2},
		{15, 20, 2},
		{20, 30, 5},
		{25, 55, 5},
	}
	for _, tc := range cases {
		if got := f.Value(tc.x); !almostEq(got, tc.v, 1e-12) {
			t.Errorf("f(%g) = %g, want %g", tc.x, got, tc.v)
		}
		if got := f.Deriv(tc.x); got != tc.d {
			t.Errorf("f'(%g) = %g, want %g", tc.x, got, tc.d)
		}
	}
}

func TestPiecewiseLinearAlpha(t *testing.T) {
	// f: slope 1 until 10, slope 9 afterwards.
	// At x=10+: alpha candidate = 10*9/10 = 9.
	f, err := NewPiecewiseLinear([]float64{0, 10}, []float64{1, 9})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Alpha(); !almostEq(got, 9, 1e-12) {
		t.Errorf("alpha = %g, want 9", got)
	}
	// Numeric should find (nearly) the same.
	if got := NumericAlpha(f, 100); got < 8.5 {
		t.Errorf("numeric alpha = %g, want close to 9", got)
	}
}

func TestSLARefund(t *testing.T) {
	f, err := SLARefund(100, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Value(100); !almostEq(got, 10, 1e-12) {
		t.Errorf("f(100) = %g, want 10", got)
	}
	if got := f.Value(110); !almostEq(got, 60, 1e-12) {
		t.Errorf("f(110) = %g, want 60", got)
	}
	if _, err := SLARefund(0, 1, 2); err == nil {
		t.Error("zero tolerance accepted")
	}
}

func TestScaledAndSum(t *testing.T) {
	f := Scaled{C: 2, F: Monomial{C: 1, Beta: 2}}
	if got := f.Value(3); got != 18 {
		t.Errorf("scaled value = %g, want 18", got)
	}
	if got := f.Deriv(3); got != 12 {
		t.Errorf("scaled deriv = %g, want 12", got)
	}
	if got := f.Alpha(); got != 2 {
		t.Errorf("scaled alpha = %g, want 2", got)
	}
	s := Sum{Fs: []Func{Linear{W: 1}, Monomial{C: 1, Beta: 3}}}
	if got := s.Value(2); got != 10 {
		t.Errorf("sum value = %g, want 10", got)
	}
	if got := s.Deriv(2); got != 13 {
		t.Errorf("sum deriv = %g, want 13", got)
	}
	if got := s.Alpha(); got != 3 {
		t.Errorf("sum alpha = %g, want 3", got)
	}
}

func TestExpCappedContinuity(t *testing.T) {
	f := ExpCapped{A: 1, B: 10, Cap: 30}
	// C^0 and C^1 continuity at the cap.
	below := f.Value(30 - 1e-9)
	above := f.Value(30 + 1e-9)
	if !almostEq(below, above, 1e-6) {
		t.Errorf("value discontinuous at cap: %g vs %g", below, above)
	}
	dBelow := f.Deriv(30 - 1e-9)
	dAbove := f.Deriv(30 + 1e-9)
	if !almostEq(dBelow, dAbove, 1e-6) {
		t.Errorf("derivative discontinuous at cap: %g vs %g", dBelow, dAbove)
	}
	if err := Validate(f, 100); err != nil {
		t.Errorf("capped exponential fails model validation: %v", err)
	}
}

func TestDiscreteDeriv(t *testing.T) {
	f := Monomial{C: 1, Beta: 2}
	// f(m+1)-f(m) = 2m+1.
	for m := 0.0; m < 10; m++ {
		if got, want := DiscreteDeriv(f, m), 2*m+1; !almostEq(got, want, 1e-12) {
			t.Errorf("discrete deriv at %g = %g, want %g", m, got, want)
		}
	}
}

func TestValidateAcceptsModelFunctions(t *testing.T) {
	pwl, _ := NewPiecewiseLinear([]float64{0, 10, 20}, []float64{1, 2, 5})
	poly, _ := NewPolynomial(0, 1, 1)
	for _, f := range []Func{
		Linear{W: 1},
		Monomial{C: 2, Beta: 2},
		Monomial{C: 1, Beta: 1},
		pwl,
		poly,
		Scaled{C: 3, F: Monomial{C: 1, Beta: 2}},
	} {
		if err := Validate(f, 200); err != nil {
			t.Errorf("Validate(%s): %v", f, err)
		}
	}
}

// nonConvex is a deliberately invalid cost function used to test the checks.
type nonConvex struct{}

func (nonConvex) Value(x float64) float64 { return math.Sqrt(x) }
func (nonConvex) Deriv(x float64) float64 {
	if x <= 0 {
		return math.Inf(1)
	}
	return 0.5 / math.Sqrt(x)
}
func (nonConvex) String() string { return "sqrt" }

func TestValidateRejectsConcave(t *testing.T) {
	if err := Validate(nonConvex{}, 100); err == nil {
		t.Error("sqrt accepted as convex")
	}
}

// decreasing is an invalid (decreasing) function.
type decreasing struct{}

func (decreasing) Value(x float64) float64 { return -x }
func (decreasing) Deriv(x float64) float64 { return -1 }
func (decreasing) String() string          { return "neg" }

func TestValidateRejectsDecreasing(t *testing.T) {
	if err := Validate(decreasing{}, 10); err == nil {
		t.Error("decreasing function accepted")
	}
}

func TestEffectiveAlphaFallsBackToNumeric(t *testing.T) {
	// ExpCapped does not implement AlphaBounded; EffectiveAlpha must still
	// return something >= 1 and finite.
	f := ExpCapped{A: 1, B: 5, Cap: 20}
	a := EffectiveAlpha(f, 100)
	if math.IsNaN(a) || a < 1 {
		t.Errorf("EffectiveAlpha = %g", a)
	}
	// For a monomial the analytic path must win and be exact.
	if got := EffectiveAlpha(Monomial{C: 5, Beta: 3}, 100); got != 3 {
		t.Errorf("EffectiveAlpha(monomial beta 3) = %g", got)
	}
}

// Property: for every model function, the Claim 2.3 inequality
// f'(S) * S <= alpha * sum_j x_j f'(prefix_j) holds for random positive x.
func TestClaim23Property(t *testing.T) {
	funcs := []Func{
		Linear{W: 2},
		Monomial{C: 1, Beta: 2},
		Monomial{C: 0.5, Beta: 3},
		mustPWL(t, []float64{0, 5, 15}, []float64{1, 3, 6}),
	}
	rng := rand.New(rand.NewSource(7))
	for _, f := range funcs {
		alpha := EffectiveAlpha(f, 1000)
		for trial := 0; trial < 200; trial++ {
			n := 1 + rng.Intn(8)
			xs := make([]float64, n)
			total := 0.0
			for i := range xs {
				xs[i] = rng.Float64() * 10
				total += xs[i]
			}
			lhs := f.Deriv(total) * total
			rhs := 0.0
			prefix := 0.0
			for _, x := range xs {
				prefix += x
				rhs += x * f.Deriv(prefix)
			}
			rhs *= alpha
			if lhs > rhs+1e-6*(1+math.Abs(rhs)) {
				t.Fatalf("Claim 2.3 violated for %s: lhs=%g rhs=%g xs=%v", f, lhs, rhs, xs)
			}
		}
	}
}

func mustPWL(t *testing.T, x, s []float64) PiecewiseLinear {
	t.Helper()
	f, err := NewPiecewiseLinear(x, s)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// Property via testing/quick: monomial values are monotone in x.
func TestQuickMonomialMonotone(t *testing.T) {
	f := Monomial{C: 1.5, Beta: 2.5}
	prop := func(a, b float64) bool {
		x, y := math.Abs(a), math.Abs(b)
		if x > y {
			x, y = y, x
		}
		return f.Value(x) <= f.Value(y)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property via testing/quick: piecewise-linear first-order convexity
// inequality f(y) - f(x) >= f'(x)(y - x).
func TestQuickFirstOrderConvexity(t *testing.T) {
	f := mustPWL(t, []float64{0, 3, 9}, []float64{1, 2, 4})
	prop := func(a, b float64) bool {
		x := math.Mod(math.Abs(a), 30)
		y := math.Mod(math.Abs(b), 30)
		return f.Value(y)-f.Value(x) >= f.Deriv(x)*(y-x)-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
