package costfn

import (
	"math"
	"testing"
)

func TestTableValidation(t *testing.T) {
	if _, err := NewTable([]float64{0}, []float64{0}); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := NewTable([]float64{1, 2}, []float64{0, 1}); err == nil {
		t.Error("not starting at x=0 accepted")
	}
	if _, err := NewTable([]float64{0, 1}, []float64{1, 2}); err == nil {
		t.Error("y(0) != 0 accepted")
	}
	if _, err := NewTable([]float64{0, 1, 1}, []float64{0, 1, 2}); err == nil {
		t.Error("non-increasing X accepted")
	}
	if _, err := NewTable([]float64{0, 1, 2}, []float64{0, 3, 1}); err == nil {
		t.Error("decreasing Y accepted")
	}
}

func TestTableInterpolation(t *testing.T) {
	tab, err := NewTable([]float64{0, 10, 20}, []float64{0, 5, 25})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, v, d float64 }{
		{0, 0, 0.5},
		{5, 2.5, 0.5},
		{10, 5, 2},
		{15, 15, 2},
		{20, 25, 2},
		{30, 45, 2}, // extrapolated with the last slope
	}
	for _, tc := range cases {
		if got := tab.Value(tc.x); math.Abs(got-tc.v) > 1e-12 {
			t.Errorf("Value(%g) = %g, want %g", tc.x, got, tc.v)
		}
		if got := tab.Deriv(tc.x); math.Abs(got-tc.d) > 1e-12 {
			t.Errorf("Deriv(%g) = %g, want %g", tc.x, got, tc.d)
		}
	}
	if tab.Value(-3) != 0 {
		t.Error("negative input not clamped")
	}
}

func TestTableConvexityDetection(t *testing.T) {
	convex, err := NewTable([]float64{0, 5, 10}, []float64{0, 5, 15})
	if err != nil {
		t.Fatal(err)
	}
	if !convex.IsConvexSamples() {
		t.Error("convex table not detected")
	}
	concave, err := NewTable([]float64{0, 5, 10}, []float64{0, 10, 15})
	if err != nil {
		t.Fatal(err)
	}
	if concave.IsConvexSamples() {
		t.Error("concave table passed convexity check")
	}
}

func TestTableAlpha(t *testing.T) {
	// Slope 1 until 10, slope 9 after: alpha = 10*9/10 = 9 at the kink.
	tab, err := NewTable([]float64{0, 10, 20}, []float64{0, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Alpha(); math.Abs(got-9) > 1e-12 {
		t.Errorf("alpha = %g, want 9", got)
	}
}

func TestSampleFreezesAnalyticFunction(t *testing.T) {
	f := Monomial{C: 1, Beta: 2}
	xs := []float64{0, 1, 2, 4, 8, 16}
	tab, err := Sample(f, xs)
	if err != nil {
		t.Fatal(err)
	}
	// Exact at sample points.
	for _, x := range xs {
		if got, want := tab.Value(x), f.Value(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("sampled value at %g = %g, want %g", x, got, want)
		}
	}
	// Interpolation over-estimates a convex function between samples
	// (secant above chord), never under.
	for x := 0.5; x < 16; x += 0.7 {
		if tab.Value(x) < f.Value(x)-1e-9 {
			t.Errorf("interpolation underestimates convex f at %g", x)
		}
	}
	if !tab.IsConvexSamples() {
		t.Error("sampled monomial not convex")
	}
	if err := Validate(tab, 16); err != nil {
		t.Errorf("sampled table fails model validation: %v", err)
	}
}

func TestTableWorksWithDiscreteDeriv(t *testing.T) {
	tab, err := NewTable([]float64{0, 3, 6}, []float64{0, 3, 12})
	if err != nil {
		t.Fatal(err)
	}
	// f(1)-f(0) = 1 (first segment slope).
	if got := DiscreteDeriv(tab, 0); math.Abs(got-1) > 1e-12 {
		t.Errorf("discrete deriv at 0 = %g", got)
	}
	// f(4)-f(3) = 3 (second segment slope).
	if got := DiscreteDeriv(tab, 3); math.Abs(got-3) > 1e-12 {
		t.Errorf("discrete deriv at 3 = %g", got)
	}
}
