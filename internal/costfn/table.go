package costfn

import (
	"errors"
	"fmt"
	"sort"
)

// Table is an empirical cost function given by sample points
// (X[i], Y[i]) with linear interpolation between them and linear
// extrapolation of the last segment beyond the final sample. This is the
// practical interface for SLAs measured from billing data rather than given
// in closed form; with convex (non-decreasing slope) samples the paper's
// guarantees apply, and Section 2.5's discrete-derivative mode runs on any
// monotone samples.
type Table struct {
	// X are the strictly increasing sample abscissae; X[0] must be 0.
	X []float64
	// Y are the sample values; Y[0] must be 0 and Y non-decreasing.
	Y []float64
}

// NewTable validates the samples and builds the function.
func NewTable(x, y []float64) (Table, error) {
	if len(x) < 2 || len(x) != len(y) {
		return Table{}, errors.New("costfn: table needs >= 2 equal-length samples")
	}
	if x[0] != 0 || y[0] != 0 {
		return Table{}, errors.New("costfn: table must start at (0, 0)")
	}
	for i := 1; i < len(x); i++ {
		if x[i] <= x[i-1] {
			return Table{}, fmt.Errorf("costfn: table X not strictly increasing at %d", i)
		}
		if y[i] < y[i-1] {
			return Table{}, fmt.Errorf("costfn: table Y decreases at %d", i)
		}
	}
	return Table{X: x, Y: y}, nil
}

// IsConvexSamples reports whether the sample slopes are non-decreasing,
// i.e. whether the interpolated function is convex (and the competitive
// guarantee applies).
func (t Table) IsConvexSamples() bool {
	prev := -1.0
	for i := 1; i < len(t.X); i++ {
		s := (t.Y[i] - t.Y[i-1]) / (t.X[i] - t.X[i-1])
		if prev >= 0 && s < prev-1e-12 {
			return false
		}
		prev = s
	}
	return true
}

// segment returns the index i such that x lies in [X[i], X[i+1]), clamped
// to the final segment.
func (t Table) segment(x float64) int {
	i := sort.SearchFloat64s(t.X, x)
	if i < len(t.X) && t.X[i] == x {
		if i == len(t.X)-1 {
			return i - 1
		}
		return i
	}
	i--
	if i < 0 {
		i = 0
	}
	if i >= len(t.X)-1 {
		i = len(t.X) - 2
	}
	return i
}

// Value interpolates (and extrapolates the last slope).
func (t Table) Value(x float64) float64 {
	if x <= 0 {
		return 0
	}
	i := t.segment(x)
	slope := (t.Y[i+1] - t.Y[i]) / (t.X[i+1] - t.X[i])
	return t.Y[i] + slope*(x-t.X[i])
}

// Deriv returns the slope of the segment containing x (right slope at
// sample points).
func (t Table) Deriv(x float64) float64 {
	if x < 0 {
		x = 0
	}
	i := t.segment(x)
	return (t.Y[i+1] - t.Y[i]) / (t.X[i+1] - t.X[i])
}

func (t Table) String() string {
	return fmt.Sprintf("table(%d samples, 0..%g)", len(t.X), t.X[len(t.X)-1])
}

// Alpha computes the curvature constant over the sampled range; for a
// convex table the supremum over all x > 0 is attained at a sample point
// (right slope), analogous to PiecewiseLinear.Alpha.
func (t Table) Alpha() float64 {
	alpha := 1.0
	for i := 1; i < len(t.X)-1; i++ {
		x := t.X[i]
		fx := t.Y[i]
		if fx <= 0 {
			continue
		}
		slope := (t.Y[i+1] - t.Y[i]) / (t.X[i+1] - t.X[i])
		if a := x * slope / fx; a > alpha {
			alpha = a
		}
	}
	return alpha
}

// Sample builds a Table by sampling an existing Func at the given points
// (useful to freeze an analytic SLA into billing-style data).
func Sample(f Func, xs []float64) (Table, error) {
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = f.Value(x)
	}
	return NewTable(xs, ys)
}
