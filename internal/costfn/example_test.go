package costfn_test

import (
	"fmt"

	"convexcache/internal/costfn"
)

// ExampleSLARefund builds the paper's motivating cost shape: misses are
// nearly free within tolerance and expensive past it.
func ExampleSLARefund() {
	f, _ := costfn.SLARefund(100, 0.1, 5)
	fmt.Printf("f(50)=%.0f f(100)=%.0f f(120)=%.0f\n",
		f.Value(50), f.Value(100), f.Value(120))
	fmt.Printf("alpha=%.0f\n", f.Alpha())
	// Output:
	// f(50)=5 f(100)=10 f(120)=110
	// alpha=50
}

// ExampleParse builds cost functions from CLI-style specs.
func ExampleParse() {
	f, _ := costfn.Parse("monomial:1,2")
	fmt.Printf("%s: f(3)=%.0f f'(3)=%.0f\n", f, f.Value(3), f.Deriv(3))
	// Output:
	// monomial(c=1,beta=2): f(3)=9 f'(3)=6
}

// ExampleFitConvex calibrates an SLA curve from billing samples.
func ExampleFitConvex() {
	// Observed (misses, penalty) pairs from a kinked SLA.
	xs := []float64{2, 5, 10, 12, 20}
	ys := []float64{2, 5, 10, 26, 90}
	f, _ := costfn.FitConvex(xs, ys, 3000)
	fmt.Printf("convex: %v, increasing fit at 12: %v\n",
		costfn.IsConvexOn(f, 20, 100) == nil, f.Value(12) > f.Value(10))
	// Output:
	// convex: true, increasing fit at 12: true
}
