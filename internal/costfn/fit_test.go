package costfn

import (
	"math"
	"math/rand"
	"testing"
)

func TestFitConvexValidation(t *testing.T) {
	if _, err := FitConvex([]float64{1}, []float64{1}, 100); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := FitConvex([]float64{1, 2}, []float64{1}, 100); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FitConvex([]float64{-1, 2}, []float64{1, 2}, 100); err == nil {
		t.Error("negative x accepted")
	}
	if _, err := FitConvex([]float64{0, 0}, []float64{0, 0}, 100); err == nil {
		t.Error("no positive x accepted")
	}
}

func TestFitConvexRecoversLinear(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x
	}
	f, err := FitConvex(xs, ys, 3000)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs {
		if got := f.Value(x); math.Abs(got-3*x) > 0.15*3*x {
			t.Errorf("fit(%g) = %g, want %g", x, got, 3*x)
		}
	}
	if err := Validate(f, 5); err != nil {
		t.Errorf("fitted function fails model validation: %v", err)
	}
}

func TestFitConvexRecoversKinkedSLA(t *testing.T) {
	// True curve: slope 1 until 10, slope 8 after.
	truth, err := NewPiecewiseLinear([]float64{0, 10}, []float64{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	xs := []float64{2, 5, 8, 10, 12, 15, 20, 30}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = truth.Value(x)
	}
	f, err := FitConvex(xs, ys, 4000)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs {
		want := truth.Value(x)
		if got := f.Value(x); math.Abs(got-want) > 0.1*(1+want) {
			t.Errorf("fit(%g) = %g, want ~%g", x, got, want)
		}
	}
	// Convexity of the result is structural.
	if err := IsConvexOn(f, 30, 200); err != nil {
		t.Errorf("fit not convex: %v", err)
	}
}

func TestFitConvexNoisySamples(t *testing.T) {
	// Quadratic with noise: the fit must remain convex/increasing and
	// track the trend.
	rng := rand.New(rand.NewSource(5))
	var xs, ys []float64
	for x := 1.0; x <= 20; x++ {
		xs = append(xs, x)
		ys = append(ys, x*x*(1+0.1*(rng.Float64()-0.5)))
	}
	f, err := FitConvex(xs, ys, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(f, 20); err != nil {
		t.Errorf("noisy fit fails model validation: %v", err)
	}
	if got, want := f.Value(15), 225.0; math.Abs(got-want) > 0.25*want {
		t.Errorf("fit(15) = %g, want ~%g", got, want)
	}
}

func TestFitConvexDuplicateXAveraged(t *testing.T) {
	f, err := FitConvex([]float64{5, 5, 10}, []float64{4, 6, 10}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Value(5); math.Abs(got-5) > 1 {
		t.Errorf("fit(5) = %g, want ~5 (average of duplicates)", got)
	}
}
