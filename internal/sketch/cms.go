// Package sketch provides a count-min sketch with periodic halving (aging),
// the frequency estimator behind the TinyLFU admission policy in
// internal/policy. Stdlib-only, deterministic hashing.
package sketch

import (
	"errors"
)

// CountMin is a conservative-update count-min sketch over 64-bit keys with
// a doorkeeper-free aging scheme: after every Window increments all
// counters halve, so estimates track recent popularity.
type CountMin struct {
	rows  int
	width uint64
	table [][]uint32
	seeds []uint64

	// Window triggers halving after this many Add calls (0 disables).
	window int64
	adds   int64
}

// NewCountMin builds a sketch with the given depth (rows) and width
// (counters per row, rounded up to a power of two); window enables aging.
func NewCountMin(rows, width int, window int64) (*CountMin, error) {
	if rows <= 0 || width <= 0 {
		return nil, errors.New("sketch: rows and width must be positive")
	}
	w := uint64(1)
	for w < uint64(width) {
		w <<= 1
	}
	c := &CountMin{rows: rows, width: w, window: window}
	for r := 0; r < rows; r++ {
		c.table = append(c.table, make([]uint32, w))
		c.seeds = append(c.seeds, 0x9E3779B97F4A7C15*uint64(r+1)+0xD1B54A32D192ED03)
	}
	return c, nil
}

func (c *CountMin) index(r int, key uint64) uint64 {
	x := key ^ c.seeds[r]
	x = (x ^ (x >> 33)) * 0xFF51AFD7ED558CCD
	x = (x ^ (x >> 33)) * 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x & (c.width - 1)
}

// Add increments the key's counters (conservative update: only the minimal
// counters grow), aging the sketch at window boundaries.
func (c *CountMin) Add(key uint64) {
	est := c.Estimate(key)
	for r := 0; r < c.rows; r++ {
		i := c.index(r, key)
		if uint64(c.table[r][i]) == est {
			c.table[r][i]++
		}
	}
	c.adds++
	if c.window > 0 && c.adds%c.window == 0 {
		c.halve()
	}
}

// Estimate returns the key's frequency estimate (an upper bound in the
// non-aged sketch).
func (c *CountMin) Estimate(key uint64) uint64 {
	min := uint64(1<<63 - 1)
	for r := 0; r < c.rows; r++ {
		v := uint64(c.table[r][c.index(r, key)])
		if v < min {
			min = v
		}
	}
	return min
}

// halve divides every counter by two (the TinyLFU reset).
func (c *CountMin) halve() {
	for r := range c.table {
		row := c.table[r]
		for i := range row {
			row[i] >>= 1
		}
	}
}

// Reset clears all counters.
func (c *CountMin) Reset() {
	for r := range c.table {
		row := c.table[r]
		for i := range row {
			row[i] = 0
		}
	}
	c.adds = 0
}
