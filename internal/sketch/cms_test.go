package sketch

import (
	"math/rand"
	"testing"
)

func TestValidation(t *testing.T) {
	if _, err := NewCountMin(0, 16, 0); err == nil {
		t.Error("0 rows accepted")
	}
	if _, err := NewCountMin(4, 0, 0); err == nil {
		t.Error("0 width accepted")
	}
}

func TestExactWhenSparse(t *testing.T) {
	c, err := NewCountMin(4, 1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		for j := 0; j <= i; j++ {
			c.Add(uint64(i))
		}
	}
	for i := 0; i < 10; i++ {
		if got := c.Estimate(uint64(i)); got != uint64(i+1) {
			t.Errorf("estimate(%d) = %d, want %d", i, got, i+1)
		}
	}
	if got := c.Estimate(999); got != 0 {
		t.Errorf("unseen key estimate = %d", got)
	}
}

func TestNeverUnderestimatesWithoutAging(t *testing.T) {
	c, err := NewCountMin(4, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	truth := make(map[uint64]uint64)
	for i := 0; i < 20000; i++ {
		k := uint64(rng.Intn(2000))
		c.Add(k)
		truth[k]++
	}
	for k, want := range truth {
		if got := c.Estimate(k); got < want {
			t.Fatalf("estimate(%d) = %d underestimates %d", k, got, want)
		}
	}
}

func TestHotKeysDominateUnderCollisions(t *testing.T) {
	c, err := NewCountMin(4, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30000; i++ {
		if rng.Intn(10) < 7 {
			c.Add(uint64(rng.Intn(8))) // hot keys 0..7
		} else {
			c.Add(uint64(100 + rng.Intn(5000)))
		}
	}
	// Every hot key should look hotter than a typical cold key.
	coldSum := uint64(0)
	for i := 0; i < 100; i++ {
		coldSum += c.Estimate(uint64(100 + i))
	}
	coldAvg := coldSum / 100
	for k := 0; k < 8; k++ {
		if got := c.Estimate(uint64(k)); got < 10*coldAvg {
			t.Errorf("hot key %d estimate %d not well above cold average %d", k, got, coldAvg)
		}
	}
}

func TestAgingHalves(t *testing.T) {
	c, err := NewCountMin(2, 64, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 99; i++ {
		c.Add(1)
	}
	if got := c.Estimate(1); got != 99 {
		t.Fatalf("pre-age estimate = %d", got)
	}
	c.Add(1) // 100th add triggers halving
	if got := c.Estimate(1); got != 50 {
		t.Errorf("post-age estimate = %d, want 50", got)
	}
}

func TestReset(t *testing.T) {
	c, err := NewCountMin(2, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Add(5)
	c.Reset()
	if got := c.Estimate(5); got != 0 {
		t.Errorf("post-reset estimate = %d", got)
	}
}
