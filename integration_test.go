package convexcache

// Cross-module integration tests: wire workload generation, the simulation
// engine, the paper's algorithm, the convex program, the offline optimum and
// the invariant checker together on one scenario each, exactly as a
// downstream user would.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"convexcache/internal/analysis"
	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/cp"
	"convexcache/internal/offline"
	"convexcache/internal/policy"
	"convexcache/internal/server"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
	"convexcache/internal/workload"
)

// TestEndToEndSandwich builds a workload, runs the algorithm, computes the
// exact optimum and the certified dual bound, and checks the full chain
// dual <= OPT <= ALG <= Theorem-1.1 bound.
func TestEndToEndSandwich(t *testing.T) {
	costs := []costfn.Func{
		costfn.Monomial{C: 1, Beta: 2},
		costfn.MustParse("sla:4,0.25,4"),
	}
	z0, err := workload.NewZipf(1, 5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	z1, err := workload.NewZipf(2, 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Mix(3, []workload.TenantStream{
		{Tenant: 0, Stream: z0, Rate: 1},
		{Tenant: 1, Stream: z1, Rate: 1},
	}, 40)
	if err != nil {
		t.Fatal(err)
	}
	k := 3
	alg, err := sim.Run(tr, core.NewFast(core.Options{Costs: costs}), sim.Config{K: k})
	if err != nil {
		t.Fatal(err)
	}
	algCost := alg.Cost(costs)
	opt, err := offline.Exact(tr, k, costs, offline.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !opt.Optimal {
		t.Fatal("exact search exhausted on tiny instance")
	}
	in, err := cp.Build(tr, k, costs)
	if err != nil {
		t.Fatal(err)
	}
	dual := in.SolveDual(300, opt.Cost/float64(in.NumRows()+1))
	alpha := costfn.EffectiveAlpha(costs[0], float64(tr.Len()))
	if a := costfn.EffectiveAlpha(costs[1], float64(tr.Len())); a > alpha {
		alpha = a
	}
	bound := 0.0
	for i, f := range costs {
		bound += f.Value(alpha * float64(k) * float64(opt.Misses[i]))
	}
	if !(dual.Best <= opt.Cost+1e-6) {
		t.Errorf("dual %g > OPT %g", dual.Best, opt.Cost)
	}
	if !(opt.Cost <= algCost+1e-9) {
		t.Errorf("OPT %g > ALG %g", opt.Cost, algCost)
	}
	if !(algCost <= bound+1e-9) {
		t.Errorf("ALG %g > Theorem 1.1 bound %g", algCost, bound)
	}
}

// TestEndToEndTraceFilesAndPolicies round-trips a generated workload
// through both trace formats and replays it with every registered policy.
func TestEndToEndTraceFilesAndPolicies(t *testing.T) {
	hot, err := workload.NewHotSet(7, 100, 10, 0.9, 200)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := workload.NewScan(50)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Mix(8, []workload.TenantStream{
		{Tenant: 0, Stream: hot, Rate: 2},
		{Tenant: 1, Stream: sc, Rate: 1},
	}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	var txt, bin bytes.Buffer
	if err := trace.Write(&txt, tr); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	fromTxt, err := trace.ReadAuto(&txt)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := trace.ReadAuto(&bin)
	if err != nil {
		t.Fatal(err)
	}
	costs := []costfn.Func{costfn.Monomial{C: 1, Beta: 2}, costfn.Linear{W: 1}}
	spec := policy.Spec{K: 32, Tenants: 2, Costs: costs, Seed: 5}
	for _, name := range policy.Names() {
		pTxt, err := policy.New(name, spec)
		if err != nil {
			t.Fatal(err)
		}
		pBin, err := policy.New(name, spec)
		if err != nil {
			t.Fatal(err)
		}
		a := sim.MustRun(fromTxt, pTxt, sim.Config{K: 32})
		b := sim.MustRun(fromBin, pBin, sim.Config{K: 32})
		if a.TotalMisses() != b.TotalMisses() {
			t.Errorf("%s: text vs binary replay differ: %d vs %d", name, a.TotalMisses(), b.TotalMisses())
		}
	}
}

// TestEndToEndInvariantPipeline runs the flushed invariant check on a
// generated workload — the full Section 2.3 machinery on top of the
// workload and trace layers.
func TestEndToEndInvariantPipeline(t *testing.T) {
	u, err := workload.NewUniform(3, 12)
	if err != nil {
		t.Fatal(err)
	}
	z, err := workload.NewZipf(4, 12, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	base, err := workload.Mix(5, []workload.TenantStream{
		{Tenant: 0, Stream: u, Rate: 1},
		{Tenant: 1, Stream: z, Rate: 2},
	}, 500)
	if err != nil {
		t.Fatal(err)
	}
	k := 5
	flushed, dummy, err := trace.WithFlush(base, k)
	if err != nil {
		t.Fatal(err)
	}
	costs := make([]costfn.Func, int(dummy)+1)
	costs[0] = costfn.Monomial{C: 1, Beta: 2}
	costs[1] = costfn.Linear{W: 3}
	costs[dummy] = core.FlushCost()
	cont := core.NewContinuous(core.Options{Costs: costs})
	if _, err := sim.Run(flushed, cont, sim.Config{K: k}); err != nil {
		t.Fatal(err)
	}
	cont.Finish()
	rep := cont.CheckInvariants(k, 1e-7)
	if !rep.Ok() {
		for _, v := range rep.Violations[:min(5, len(rep.Violations))] {
			t.Error(v)
		}
		t.Fatalf("%d invariant violations", len(rep.Violations))
	}
}

// TestEndToEndShardedSimulate exercises runspec.Scenario.Shards through the
// HTTP surface: POST /v1/simulate with shards set must reach deterministic
// sharded replay and, on an eviction-free instance, return a response
// byte-for-byte identical to the unsharded one. The instance is built so the
// partitioned and shared models coincide exactly: 24 distinct pages with
// k = 24 means no cache — whole or partitioned into shard shares that divide
// evenly — ever evicts, so misses are the cold misses on both sides. Any
// byte of divergence (counters, costs, response shape) is a real bug in the
// shards plumbing, not model noise.
func TestEndToEndShardedSimulate(t *testing.T) {
	const distinctPages, k = 24, 24
	var tj server.TraceJSON
	for i := 0; i < 600; i++ {
		tenant := int64(i % 2)
		// Alternating tenants, each cyclically scanning its 12 pages: every
		// page is touched early and re-touched often, no evictions at k=24.
		page := tenant*1000 + int64((i/2)%(distinctPages/2))
		tj = append(tj, [2]int64{tenant, page})
	}
	post := func(shards int) []byte {
		t.Helper()
		raw, err := json.Marshal(server.SimulateRequest{
			Trace:    tj,
			K:        k,
			Policies: []string{"alg"},
			Costs:    []string{"monomial:1,2", "linear:3"},
			Shards:   shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest("POST", "/v1/simulate", bytes.NewReader(raw))
		rec := httptest.NewRecorder()
		server.New().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("shards=%d: status %d: %s", shards, rec.Code, rec.Body.String())
		}
		return rec.Body.Bytes()
	}
	unsharded := post(0)
	var base server.SimulateResponse
	if err := json.Unmarshal(unsharded, &base); err != nil {
		t.Fatal(err)
	}
	if base.Results[0].Hits+sumInt64(base.Results[0].Misses) != int64(len(tj)) {
		t.Fatalf("unsharded accounting broken: %+v", base.Results[0])
	}
	if sumInt64(base.Results[0].Misses) != distinctPages {
		t.Fatalf("instance not eviction-free: %d misses, want %d cold misses", sumInt64(base.Results[0].Misses), distinctPages)
	}
	for _, shards := range []int{2, 3, 4} {
		if got := post(shards); !bytes.Equal(got, unsharded) {
			t.Errorf("shards=%d response differs from unsharded:\n  sharded:   %s\n  unsharded: %s", shards, got, unsharded)
		}
	}
}

func sumInt64(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}

// TestEndToEndMattsonGuidesPartition checks the analysis chain: miss-ratio
// curves from a real workload feed the DP partitioner whose quotas then run
// in the simulator, landing within the DP's predicted cost for the static
// policy (the prediction is exact when pools are isolated).
func TestEndToEndMattsonGuidesPartition(t *testing.T) {
	z0, err := workload.NewZipf(21, 30, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	z1, err := workload.NewZipf(22, 200, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Mix(23, []workload.TenantStream{
		{Tenant: 0, Stream: z0, Rate: 1},
		{Tenant: 1, Stream: z1, Rate: 1},
	}, 5000)
	if err != nil {
		t.Fatal(err)
	}
	k := 40
	curves, err := analysis.PerTenant(tr, k)
	if err != nil {
		t.Fatal(err)
	}
	costs := []costfn.Func{costfn.Monomial{C: 1, Beta: 2}, costfn.Linear{W: 1}}
	quotas, predicted, err := analysis.OptimalStaticPartition(curves, costs, k)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.MustRun(tr, policy.NewStaticPartition(quotas), sim.Config{K: k})
	got := res.Cost(costs)
	// The static-partition policy may deviate slightly from pure isolation
	// (shared free space before warm-up); allow 10%.
	if got > predicted*1.10 {
		t.Errorf("simulated static cost %g far above DP prediction %g (quotas %v)", got, predicted, quotas)
	}
}
