package convexcache

import (
	"fmt"
	"testing"

	"convexcache/internal/analysis"
	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/cp"
	"convexcache/internal/experiments"
	"convexcache/internal/offline"
	"convexcache/internal/policy"
	"convexcache/internal/sim"
	"convexcache/internal/stats"
	"convexcache/internal/trace"
	"convexcache/internal/workload"
)

// benchExperiment runs one experiment table per benchmark iteration; the
// reported ns/op is the cost of regenerating that table end to end.
func benchExperiment(b *testing.B, run func(quick bool) (*stats.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tb, err := run(true)
		if err != nil {
			b.Fatal(err)
		}
		if tb.NumRows() == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

// One bench per experiment id (DESIGN.md section 3).

func BenchmarkExpTheorem11(b *testing.B)   { benchExperiment(b, experiments.Theorem11) }
func BenchmarkExpCorollary12(b *testing.B) { benchExperiment(b, experiments.Corollary12) }
func BenchmarkExpBiCriteria(b *testing.B)  { benchExperiment(b, experiments.BiCriteria) }
func BenchmarkExpLowerBound(b *testing.B)  { benchExperiment(b, experiments.LowerBound) }
func BenchmarkExpRatioVsK(b *testing.B)    { benchExperiment(b, experiments.RatioVsK) }
func BenchmarkExpSLA(b *testing.B)         { benchExperiment(b, experiments.SLAComparison) }
func BenchmarkExpDualBound(b *testing.B)   { benchExperiment(b, experiments.DualBound) }
func BenchmarkExpPhases(b *testing.B)      { benchExperiment(b, experiments.Phases) }
func BenchmarkExpAblation(b *testing.B)    { benchExperiment(b, experiments.Ablation) }
func BenchmarkBufferPool(b *testing.B)     { benchExperiment(b, experiments.BufferPool) }
func BenchmarkExpMultiPool(b *testing.B)   { benchExperiment(b, experiments.MultiPool) }
func BenchmarkExpStaticVsDyn(b *testing.B) { benchExperiment(b, experiments.StaticVsDynamic) }
func BenchmarkExpFractional(b *testing.B)  { benchExperiment(b, experiments.Fractional) }
func BenchmarkExpLPCert(b *testing.B)      { benchExperiment(b, experiments.LPCertificate) }
func BenchmarkExpRobustness(b *testing.B)  { benchExperiment(b, experiments.Robustness) }
func BenchmarkExpAlpha(b *testing.B)       { benchExperiment(b, experiments.AlphaSensitivity) }
func BenchmarkExpHierarchy(b *testing.B)   { benchExperiment(b, experiments.Hierarchy) }
func BenchmarkExpLookahead(b *testing.B)   { benchExperiment(b, experiments.Lookahead) }
func BenchmarkExpFracConvex(b *testing.B)  { benchExperiment(b, experiments.FractionalConvex) }

// E10: raw policy throughput — requests served per second on a large
// multi-tenant Zipf mix for each implementation and cache size.

func benchTrace(b *testing.B, tenants int, pagesPer int64, length int) *trace.Trace {
	b.Helper()
	streams := make([]workload.TenantStream, tenants)
	for i := range streams {
		z, err := workload.NewZipf(int64(i+1), pagesPer, 0.9)
		if err != nil {
			b.Fatal(err)
		}
		streams[i] = workload.TenantStream{Tenant: trace.Tenant(i), Stream: z, Rate: 1}
	}
	tr, err := workload.Mix(42, streams, length)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func benchCosts(tenants int) []costfn.Func {
	costs := make([]costfn.Func, tenants)
	for i := range costs {
		if i%2 == 0 {
			costs[i] = costfn.Monomial{C: 1, Beta: 2}
		} else {
			costs[i] = costfn.Linear{W: float64(i + 1)}
		}
	}
	return costs
}

func benchPolicyThroughput(b *testing.B, mk func() sim.Policy, k int) {
	tr := benchTrace(b, 4, 4096, 200_000)
	tr.Dense() // densify outside the measured region
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := mk()
		if _, err := sim.Run(tr, p, sim.Config{K: k}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(0)
	b.ReportMetric(float64(tr.Len()*b.N)/b.Elapsed().Seconds(), "req/s")
}

func BenchmarkCoreThroughput(b *testing.B) {
	for _, k := range []int{256, 4096, 65536} {
		costs := benchCosts(4)
		b.Run(fmt.Sprintf("fast/k=%d", k), func(b *testing.B) {
			benchPolicyThroughput(b, func() sim.Policy { return core.NewFast(core.Options{Costs: costs}) }, k)
		})
		if k <= 256 {
			// The reference implementation is O(cache) per eviction; only
			// the smallest size is tractable at benchmark scale.
			b.Run(fmt.Sprintf("discrete/k=%d", k), func(b *testing.B) {
				benchPolicyThroughput(b, func() sim.Policy { return core.NewDiscrete(core.Options{Costs: costs}) }, k)
			})
		}
		b.Run(fmt.Sprintf("lru/k=%d", k), func(b *testing.B) {
			benchPolicyThroughput(b, func() sim.Policy { return policy.NewLRU() }, k)
		})
		b.Run(fmt.Sprintf("greedy-dual/k=%d", k), func(b *testing.B) {
			benchPolicyThroughput(b, func() sim.Policy { return policy.NewGreedyDual([]float64{1, 2, 3, 4}) }, k)
		})
	}
}

// BenchmarkRequestLoopAllocs isolates the steady-state allocation behaviour
// of the dense sim.Run request loop: the policy reuses its slices across
// runs (PrepareDense resets in place), so allocs/op divided by the request
// count is the per-request allocation rate, which must stay ~0.
func BenchmarkRequestLoopAllocs(b *testing.B) {
	tr := benchTrace(b, 4, 4096, 200_000)
	tr.Dense()
	costs := benchCosts(4)
	p := core.NewFast(core.Options{Costs: costs})
	// Prime the policy's dense state so the measured runs reuse it.
	if _, err := sim.Run(tr, p, sim.Config{K: 4096}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(tr, p, sim.Config{K: 4096}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len()*b.N)/b.Elapsed().Seconds(), "req/s")
}

// Micro-benchmarks of the algorithm's building blocks.

func BenchmarkMarginalEvaluation(b *testing.B) {
	opt := core.Options{Costs: benchCosts(8)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Marginal(trace.Tenant(i%8), float64(i%1000))
	}
}

func BenchmarkMattson(b *testing.B) {
	tr := benchTrace(b, 2, 8192, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.Mattson(tr, 4096); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len()*b.N)/b.Elapsed().Seconds(), "req/s")
}

func BenchmarkExactOPT(b *testing.B) {
	tr := benchTrace(b, 2, 5, 40)
	costs := benchCosts(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := offline.Exact(tr, 3, costs, offline.Limits{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Optimal {
			b.Fatal("not solved")
		}
	}
}

func BenchmarkCPDual(b *testing.B) {
	tr := benchTrace(b, 2, 5, 60)
	costs := benchCosts(2)
	in, err := cp.Build(tr, 3, costs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.SolveDual(100, 1)
	}
}

func BenchmarkZipfSampling(b *testing.B) {
	z, err := workload.NewZipf(1, 1<<20, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Next()
	}
}

func BenchmarkBufferPoolGetRelease(b *testing.B) {
	costs := benchCosts(2)
	b.Run("convex", func(b *testing.B) { benchPool(b, true, costs) })
	b.Run("lru", func(b *testing.B) { benchPool(b, false, costs) })
}
