// Quickstart: run the paper's convex-cost caching algorithm on a two-tenant
// workload and compare it with LRU, using the declarative run-spec layer —
// the same Scenario type the CLIs and the HTTP API execute.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"convexcache/internal/policy"
	"convexcache/internal/runspec"
	"convexcache/internal/sim"
)

func main() {
	// Tenant 0 re-reads a skewed working set and pays quadratically for
	// misses (each extra miss hurts more); tenant 1 floods with a uniform
	// scan over many pages and pays a small flat price per miss. The whole
	// run is one declarative scenario.
	seed0, seed1 := int64(1), int64(2)
	sc := runspec.Scenario{
		Trace: runspec.TraceSpec{Workload: &runspec.WorkloadSpec{
			Tenants: []runspec.TenantSpec{
				{Stream: "zipf:50,1.1", Seed: &seed0},
				{Stream: "uniform:2000:3", Seed: &seed1},
			},
			Length: 20000,
			Seed:   3,
		}},
		Policies: []runspec.PolicySpec{{Name: "alg"}, {Name: "lru"}, {Name: "greedy-dual"}},
		Costs:    []string{"monomial:1,2", "linear:0.1"},
		K:        64,
	}
	// The hook swaps in a custom policy instance — here greedy-dual with
	// explicit per-tenant weights instead of the registry default.
	sc.PolicyHook = func(name string) sim.Policy {
		if name == "greedy-dual" {
			return policy.NewGreedyDual([]float64{1, 0.1})
		}
		return nil
	}

	out, err := sc.Execute(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shared cache of %d pages, %d requests, 2 tenants\n\n", sc.K, out.Trace.Len())
	for _, row := range out.Rows {
		if row.Err != nil {
			log.Fatal(row.Err)
		}
		fmt.Printf("%-14s misses per tenant = %v  total convex cost = %.1f\n",
			row.Policy, row.Result.Misses, row.Cost)
	}

	// The same algorithm also runs with arbitrary (non-differentiable)
	// cost functions via finite differences (paper Section 2.5): give
	// tenant 0 an SLA refund curve and flip the algorithm options.
	sc.Policies = []runspec.PolicySpec{{Name: "alg", DiscreteDeriv: true, CountMisses: true}}
	sc.Costs = []string{"sla:100,0.05,5", "linear:0.1"}
	out, err = sc.Execute(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	row := out.Rows[0]
	if row.Err != nil {
		log.Fatal(row.Err)
	}
	fmt.Printf("\nwith an SLA refund curve for tenant 0: misses %v, refund %.1f\n",
		row.Result.Misses, row.Cost)
}
