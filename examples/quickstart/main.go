// Quickstart: run the paper's convex-cost caching algorithm on a two-tenant
// workload and compare it with LRU.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/policy"
	"convexcache/internal/sim"
	"convexcache/internal/workload"
)

func main() {
	// Tenant 0 pays quadratically for misses (each extra miss hurts more);
	// tenant 1 pays a small flat price per miss.
	costs := []costfn.Func{
		costfn.Monomial{C: 1, Beta: 2},
		costfn.Linear{W: 0.1},
	}

	// Tenant 0 re-reads a skewed working set; tenant 1 floods with a
	// uniform scan over many pages.
	hot, err := workload.NewZipf(1, 50, 1.1)
	if err != nil {
		log.Fatal(err)
	}
	flood, err := workload.NewUniform(2, 2000)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := workload.Mix(3, []workload.TenantStream{
		{Tenant: 0, Stream: hot, Rate: 1},
		{Tenant: 1, Stream: flood, Rate: 3},
	}, 20000)
	if err != nil {
		log.Fatal(err)
	}

	const k = 64
	run := func(name string, p sim.Policy) {
		res, err := sim.Run(tr, p, sim.Config{K: k})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s misses per tenant = %v  total convex cost = %.1f\n",
			name, res.Misses, res.Cost(costs))
	}

	fmt.Printf("shared cache of %d pages, %d requests, 2 tenants\n\n", k, tr.Len())
	run("alg-discrete", core.NewFast(core.Options{Costs: costs}))
	run("lru", policy.NewLRU())
	run("greedy-dual", policy.NewGreedyDual([]float64{1, 0.1}))

	// The same algorithm also runs with arbitrary (non-differentiable)
	// cost functions via finite differences (paper Section 2.5).
	sla, err := costfn.SLARefund(100, 0.05, 5)
	if err != nil {
		log.Fatal(err)
	}
	slaCosts := []costfn.Func{sla, costfn.Linear{W: 0.1}}
	res, err := sim.Run(tr, core.NewFast(core.Options{
		Costs:            slaCosts,
		UseDiscreteDeriv: true,
		CountMisses:      true,
	}), sim.Config{K: k})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith an SLA refund curve for tenant 0: misses %v, refund %.1f\n",
		res.Misses, res.Cost(slaCosts))
}
