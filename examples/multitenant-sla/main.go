// Multitenant-SLA: the motivating DaaS scenario — four tenants with
// piecewise-linear SLA refund curves share one buffer cache. Compares the
// total refund the provider pays under the paper's cost-aware algorithm
// against the cost-oblivious baselines, and verifies the Theorem 1.1 style
// bound against a certified lower bound from the convex-program dual.
//
// The whole comparison is one declarative runspec.Scenario: workload,
// SLA cost curves, cache size and policy list in a single value that could
// as well be a JSON file fed to convexsim -scenario.
//
//	go run ./examples/multitenant-sla
package main

import (
	"context"
	"fmt"
	"log"

	"convexcache/internal/runspec"
)

func main() {
	// SLA shapes: within tolerance a miss is nearly free; beyond it the
	// refund slope jumps (premium tenants jump hardest). Skewed Zipf mixes
	// with imbalanced rates; the stream seeds are pinned for repeatability.
	seeds := []int64{10, 11, 12, 13}
	sc := runspec.Scenario{
		Trace: runspec.TraceSpec{Workload: &runspec.WorkloadSpec{
			Tenants: []runspec.TenantSpec{
				{Stream: "zipf:300,1.0:1", Seed: &seeds[0]},
				{Stream: "zipf:300,0.9:2", Seed: &seeds[1]},
				{Stream: "zipf:300,0.8:3", Seed: &seeds[2]},
				{Stream: "zipf:300,0.6:4", Seed: &seeds[3]},
			},
			Length: 40000,
			Seed:   99,
		}},
		Policies: []runspec.PolicySpec{
			{Name: "alg", DiscreteDeriv: true, CountMisses: true},
			{Name: "lru"},
			{Name: "lfu"},
			{Name: "static-partition"},
			{Name: "belady-cost"},
		},
		Costs: []string{
			"sla:150,0.05,25", // premium
			"sla:600,0.05,6",  // standard
			"sla:2000,0.02,1", // economy
			"linear:0.02",     // best effort
		},
		K: 180,
	}

	out, err := sc.Execute(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4 tenants, %d requests, cache %d pages\n", out.Trace.Len(), sc.K)
	fmt.Printf("%-18s %12s   %s\n", "policy", "total refund", "per-tenant misses")
	byName := map[string]float64{}
	for _, row := range out.Rows {
		if row.Err != nil {
			log.Fatal(row.Err)
		}
		label := row.Policy
		if label == "belady-cost" {
			label += "*" // offline reference
		}
		fmt.Printf("%-18s %12.1f   %v\n", label, row.Cost, row.Result.Misses)
		byName[row.Policy] = row.Cost
	}
	fmt.Printf("\n(*offline reference)\ncost-aware saves %.1f%% of the refund vs LRU\n",
		100*(1-byName["alg"]/byName["lru"]))
}
