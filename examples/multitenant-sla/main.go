// Multitenant-SLA: the motivating DaaS scenario — four tenants with
// piecewise-linear SLA refund curves share one buffer cache. Compares the
// total refund the provider pays under the paper's cost-aware algorithm
// against the cost-oblivious baselines, and verifies the Theorem 1.1 style
// bound against a certified lower bound from the convex-program dual.
//
//	go run ./examples/multitenant-sla
package main

import (
	"fmt"
	"log"

	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/policy"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
	"convexcache/internal/workload"
)

func main() {
	// SLA shapes: within tolerance a miss is nearly free; beyond it the
	// refund slope jumps (premium tenants jump hardest).
	mustSLA := func(m0, cheap, steep float64) costfn.Func {
		f, err := costfn.SLARefund(m0, cheap, steep)
		if err != nil {
			log.Fatal(err)
		}
		return f
	}
	costs := []costfn.Func{
		mustSLA(150, 0.05, 25), // premium
		mustSLA(600, 0.05, 6),  // standard
		mustSLA(2000, 0.02, 1), // economy
		costfn.Linear{W: 0.02}, // best effort
	}

	// Skewed Zipf mixes with imbalanced rates.
	streams := make([]workload.TenantStream, 4)
	for i := range streams {
		z, err := workload.NewZipf(int64(10+i), 300, []float64{1.0, 0.9, 0.8, 0.6}[i])
		if err != nil {
			log.Fatal(err)
		}
		streams[i] = workload.TenantStream{
			Tenant: trace.Tenant(i),
			Stream: z,
			Rate:   []float64{1, 2, 3, 4}[i],
		}
	}
	tr, err := workload.Mix(99, streams, 40000)
	if err != nil {
		log.Fatal(err)
	}
	const k = 180

	fmt.Printf("4 tenants, %d requests, cache %d pages\n", tr.Len(), k)
	fmt.Printf("%-18s %12s   %s\n", "policy", "total refund", "per-tenant misses")
	run := func(name string, p sim.Policy) float64 {
		res, err := sim.Run(tr, p, sim.Config{K: k})
		if err != nil {
			log.Fatal(err)
		}
		c := res.Cost(costs)
		fmt.Printf("%-18s %12.1f   %v\n", name, c, res.Misses)
		return c
	}
	algOpt := core.Options{Costs: costs, UseDiscreteDeriv: true, CountMisses: true}
	algCost := run("alg-discrete", core.NewFast(algOpt))
	lruCost := run("lru", policy.NewLRU())
	run("lfu", policy.NewLFU())
	run("static-partition", policy.NewStaticPartition(policy.EvenQuotas(k, 4)))
	run("belady-cost*", policy.NewCostAwareBelady(costs))
	fmt.Printf("\n(*offline reference)\ncost-aware saves %.1f%% of the refund vs LRU\n",
		100*(1-algCost/lruCost))
}
