// Multipool: the paper's Section-5 future-work scenario — tenants assigned
// to separate memory pools (servers) with switching costs for migration.
// Shows one shared pool vs a static two-pool split vs greedy rebalancing
// under load that shifts between tenants halfway through.
//
//	go run ./examples/multipool
package main

import (
	"fmt"
	"log"

	"convexcache/internal/costfn"
	"convexcache/internal/multipool"
	"convexcache/internal/trace"
	"convexcache/internal/workload"
)

func main() {
	const length = 24000
	costs := make([]costfn.Func, 4)
	for i := range costs {
		costs[i] = costfn.Monomial{C: 1, Beta: 2}
	}
	tr, err := shiftingTrace(length)
	if err != nil {
		log.Fatal(err)
	}

	run := func(name string, cfg multipool.Config) {
		sys, err := multipool.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run(tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s cache cost %12.0f  switch %6.0f  total %12.0f  migrations %d\n",
			name, res.CacheCost, res.SwitchTotal, res.TotalCost(), res.Migrations)
	}

	fmt.Printf("4 tenants, load flips halfway; pools of 30 pages (or one of 60)\n\n")
	run("single shared pool", multipool.Config{
		PoolSizes: []int{60}, Costs: costs, Assign: []int{0, 0, 0, 0},
	})
	run("2 pools, static assignment", multipool.Config{
		PoolSizes: []int{30, 30}, Costs: costs, Assign: []int{0, 0, 1, 1},
	})
	run("2 pools, greedy rebalancing", multipool.Config{
		PoolSizes: []int{30, 30}, Costs: costs, Assign: []int{0, 0, 1, 1},
		SwitchCost: 50, EpochLen: length / 40, Rebalancer: &multipool.GreedyRebalancer{},
	})
	fmt.Println("\nsharing wins by statistical multiplexing; when servers are separate,")
	fmt.Println("paying the switching cost to follow the load recovers part of the gap.")
}

// shiftingTrace mixes four Zipf tenants whose hot pair flips mid-run.
func shiftingTrace(length int) (*trace.Trace, error) {
	mk := func(seed int64) (workload.Stream, error) { return workload.NewZipf(seed, 60, 0.9) }
	build := func(base int64, rates []float64, n int) (*trace.Trace, error) {
		streams := make([]workload.TenantStream, 4)
		for i := range streams {
			z, err := mk(base + int64(i))
			if err != nil {
				return nil, err
			}
			streams[i] = workload.TenantStream{Tenant: trace.Tenant(i), Stream: z, Rate: rates[i]}
		}
		return workload.Mix(base, streams, n)
	}
	first, err := build(100, []float64{4, 4, 1, 1}, length/2)
	if err != nil {
		return nil, err
	}
	second, err := build(200, []float64{1, 1, 4, 4}, length-length/2)
	if err != nil {
		return nil, err
	}
	return first.Concat(second)
}
