// Adversarial: reproduce the Theorem 1.4 lower-bound construction
// interactively — an adversary that always requests the one page the online
// algorithm does not hold — and compare the online cost against the paper's
// offline batched strategy.
//
//	go run ./examples/adversarial
package main

import (
	"fmt"
	"log"
	"math"

	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/policy"
	"convexcache/internal/runspec"
	"convexcache/internal/sim"
	"convexcache/internal/workload"
)

func main() {
	const (
		n     = 9    // tenants, one page each
		beta  = 2.0  // cost exponent: f_i(x) = x^2
		steps = 5000 // adversary length
	)
	adv, err := workload.NewAdversary(n)
	if err != nil {
		log.Fatal(err)
	}
	k := adv.CacheSize()
	costs := make([]costfn.Func, n)
	for i := range costs {
		costs[i] = costfn.Monomial{C: 1, Beta: beta}
	}

	fmt.Printf("adversary: n=%d single-page tenants, cache k=%d, f(x)=x^%.0f, T=%d\n\n", n, k, beta, steps)

	for _, entry := range []struct {
		name string
		p    sim.Policy
	}{
		{"alg-discrete", core.NewFast(core.Options{Costs: costs})},
		{"lru", policy.NewLRU()},
		{"marking", policy.NewMarking()},
	} {
		res, tr, err := runspec.Interactive(adv, steps, entry.p, k)
		if err != nil {
			log.Fatal(err)
		}
		offlineEv, err := workload.BatchedOfflineCost(tr, n)
		if err != nil {
			log.Fatal(err)
		}
		var online, offline float64
		for i := 0; i < n; i++ {
			online += math.Pow(float64(res.Misses[i]), beta)
			offline += math.Pow(float64(offlineEv[i]), beta)
		}
		fmt.Printf("%-14s online cost %12.0f   offline (batched) %10.0f   ratio %8.1f   (n/4)^beta = %.1f\n",
			entry.name, online, offline, online/offline, math.Pow(n/4.0, beta))
	}
	fmt.Println("\nevery deterministic online algorithm misses every request; the offline")
	fmt.Println("strategy evicts once per batch of (n-1)/2 requests, giving the Omega(k)^beta gap.")
}
