// Bufferpool: deploy the algorithm inside the SQLVM-style concurrent buffer
// pool substrate — multiple client goroutines, pinned pages, windowed SLA
// refunds — and compare the convex-cost replacer with LRU.
//
//	go run ./examples/bufferpool
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"convexcache/internal/bufferpool"
	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/trace"
)

const (
	frames  = 128
	workers = 6
	opsPer  = 20000
	window  = 2000
)

func main() {
	mustSLA := func(m0, cheap, steep float64) costfn.Func {
		f, err := costfn.SLARefund(m0, cheap, steep)
		if err != nil {
			log.Fatal(err)
		}
		return f
	}
	costs := []costfn.Func{
		mustSLA(80, 0.05, 12),  // premium: small hot set
		mustSLA(300, 0.05, 3),  // standard
		costfn.Linear{W: 0.01}, // analytics scans
	}

	run := func(name string, rep bufferpool.Replacer) {
		meter, err := bufferpool.NewSLAMeter(window, costs)
		if err != nil {
			log.Fatal(err)
		}
		disk := &bufferpool.Disk{}
		pool, err := bufferpool.New(disk, len(costs), bufferpool.Config{
			Frames: frames, Replacer: rep, Meter: meter,
		})
		if err != nil {
			log.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)))
				buf := make([]byte, bufferpool.PageSize)
				universe := []int64{60, 250, 3000}
				for i := 0; i < opsPer; i++ {
					tn := rng.Intn(3)
					pg := trace.PageID(int64(tn)*1_000_000 + rng.Int63n(universe[tn]))
					if err := pool.Get(trace.Tenant(tn), pg, buf); err != nil {
						log.Fatal(err)
					}
					if err := pool.Release(pg); err != nil {
						log.Fatal(err)
					}
				}
			}(w)
		}
		wg.Wait()
		meter.Flush()
		s := pool.Stats()
		fmt.Printf("%-8s refund %10.1f   misses %v   disk reads %d   windows %d\n",
			name, meter.TotalRefund(), s.Misses, disk.Reads(), meter.Windows())
	}

	fmt.Printf("buffer pool: %d frames, %d workers x %d ops, SLA window %d\n\n",
		frames, workers, opsPer, window)
	opt := core.Options{Costs: costs, UseDiscreteDeriv: true, CountMisses: true}
	run("convex", bufferpool.NewConvexReplacer(opt))
	run("lru", bufferpool.NewLRUReplacer())
}
