// Package convexcache reproduces "Online Caching with Convex Costs"
// (Menache & Singh, SPAA 2015): an online multi-tenant caching algorithm
// with per-tenant convex miss-cost functions, its primal-dual analysis
// machinery, offline comparators, lower-bound adversary, baselines, workload
// generators, and a buffer-pool deployment substrate.
//
// See README.md for the layout and DESIGN.md for the system inventory and
// experiment index. The root package hosts the benchmark harness
// (bench_test.go), one benchmark per experiment table/figure.
package convexcache
