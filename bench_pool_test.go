package convexcache

import (
	"math/rand"
	"testing"

	"convexcache/internal/bufferpool"
	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/trace"
)

// benchPool measures single-threaded Get/Release throughput of the buffer
// pool with either replacer.
func benchPool(b *testing.B, convex bool, costs []costfn.Func) {
	b.Helper()
	var rep bufferpool.Replacer
	if convex {
		rep = bufferpool.NewConvexReplacer(core.Options{Costs: costs, CountMisses: true})
	} else {
		rep = bufferpool.NewLRUReplacer()
	}
	disk := &bufferpool.Disk{}
	pool, err := bufferpool.New(disk, len(costs), bufferpool.Config{Frames: 512, Replacer: rep})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	buf := make([]byte, bufferpool.PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tn := trace.Tenant(rng.Intn(len(costs)))
		pg := trace.PageID(int64(tn)*1_000_000 + rng.Int63n(2048))
		if err := pool.Get(tn, pg, buf); err != nil {
			b.Fatal(err)
		}
		if err := pool.Release(pg); err != nil {
			b.Fatal(err)
		}
	}
}
