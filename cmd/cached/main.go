// Command cached runs the live sharded cache service (internal/cached): the
// paper's online algorithm applied to live GET/PUT traffic instead of a
// recorded trace, with every shard keeping a deterministic request log so
// the whole run is differentially checkable against the offline simulator.
//
// Two modes:
//
//	cached [serve] -addr :8090 -k 4096 -shards 4 -tenants 8 \
//	       -policy alg -costs monomial:1,2 -costs linear:1
//
// serves the HTTP API (POST /v1/cache wire batches, GET /v1/cache/stats,
// POST /v1/cache/verify, /healthz, /metrics). With -adaptive the policy is
// replaced by the quota-partition engine: per-tenant quotas seeded by an
// even split, a streaming MRC estimator on every shard (GET /v1/mrc/live),
// and a capacity controller that re-splits k across tenants by marginal
// convex cost — every -rebalance-every period and on demand via
// POST /v1/cache/rebalance; -reserve pages per tenant are never reclaimed.
// -mrc enables the estimator alone under a classic policy. On SIGINT/SIGTERM
// the server drains
// in-flight requests, freezes the shards, and — with -verify-on-shutdown
// (default true) — replays the merged request log through the simulator and
// exits nonzero on any per-tenant counter divergence: a crash-free exit is a
// correctness certificate for the whole serving session.
//
//	cached drive -target http://127.0.0.1:8090 -requests 500000 \
//	       -clients 8 -stream zipf:4000,1.2 -stream uniform:2000
//
// is the load generator: it reuses the runspec/tracegen stream-spec syntax
// (one -stream per tenant, KIND:PARAMS[:RATE]) to synthesize a seeded
// multi-tenant workload, drives it in concurrent batches against a running
// server, then hits /v1/cache/verify and exits nonzero unless the
// live-vs-replay diff is clean. The CI cached-smoke job is exactly this
// pair.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"convexcache/internal/cached"
	"convexcache/internal/fault"
	"convexcache/internal/mrclive"
	"convexcache/internal/obs"
	"convexcache/internal/resilience"
	"convexcache/internal/runspec"
	"convexcache/internal/trace"
	"convexcache/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) > 0 && args[0] == "drive" {
		return runDrive(args[1:])
	}
	if len(args) > 0 && args[0] == "serve" {
		args = args[1:]
	}
	return runServe(args)
}

// stringList is a repeatable string flag.
type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func runServe(args []string) int {
	fs := flag.NewFlagSet("cached serve", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8090", "listen address")
		k             = fs.Int("k", 4096, "total cache capacity in pages (split across shards)")
		shards        = fs.Int("shards", 4, "shard count")
		tenants       = fs.Int("tenants", 8, "tenant universe size")
		policyName    = fs.String("policy", "alg", "eviction policy (runspec registry name)")
		seed          = fs.Int64("seed", 1, "seed for randomized policies")
		logFormat     = fs.String("log-format", "text", "log format: text or json")
		shutdownGrace = fs.Duration("shutdown-grace", 30*time.Second, "in-flight request drain budget on SIGINT/SIGTERM")
		verifyOnExit  = fs.Bool("verify-on-shutdown", true, "replay the request log on shutdown and fail on divergence")
		maxBody       = fs.Int64("max-body", cached.MaxBodyBytes, "request body cap in bytes")
		maxConcurrent = fs.Int("max-concurrent", 0, "concurrent cache requests (0 = GOMAXPROCS)")
		rateRPS       = fs.Float64("rate-rps", 0, "per-client sustained requests/second (0 disables)")
		rateBurst     = fs.Float64("rate-burst", 0, "per-client burst allowance (0 = 2x rate-rps)")
		breakFails    = fs.Int("breaker-failures", 0, "consecutive failures that open a circuit (0 = default)")
		breakOpenFor  = fs.Duration("breaker-open-for", 0, "cooldown before an open circuit half-opens (0 = default)")
		adaptive      = fs.Bool("adaptive", false, "partition mode: per-tenant quotas steered by the live MRC controller (replaces -policy)")
		mapStep       = fs.Bool("map-step", false, "run the map-mode reference step instead of the dense shard core (differential debugging)")
		mrcOn         = fs.Bool("mrc", false, "enable the streaming MRC estimator (implied by -adaptive)")
		mrcWindow     = fs.Int("mrc-window", 8, "estimator sliding window length in epochs")
		mrcEpoch      = fs.Int("mrc-epoch", 4096, "requests per estimator epoch (per shard)")
		mrcRate       = fs.Float64("mrc-rate", 1.0, "SHARDS sampling rate in (0,1]")
		mrcMaxSize    = fs.Int("mrc-max-size", 0, "largest estimated capacity in pages (0 = k)")
		rebalanceTick = fs.Duration("rebalance-every", 0, "capacity controller period (0 = only on POST /v1/cache/rebalance)")
		reserve       = fs.Int("reserve", 1, "per-tenant reserve floor in pages the controller never reclaims")
		walDir        = fs.String("wal", "", "write-ahead-log directory; enables crash-fault tolerance (empty = in-memory only)")
		walRecover    = fs.Bool("recover", false, "recover existing state from the -wal directory instead of refusing it")
		fsyncMode     = fs.String("fsync", "interval", "WAL fsync policy: always, interval or off")
		fsyncEvery    = fs.Duration("fsync-interval", 0, "max unsynced window under -fsync interval (0 = 50ms)")
		segBytes      = fs.Int64("segment-bytes", 0, "WAL segment rotation size in bytes (0 = 8MiB)")
		ckptEvery     = fs.Int("checkpoint-every", 0, "checkpoint every N log entries per shard (0 = default, negative disables)")
		walFault      = fs.String("wal-fault", "", "deterministic WAL fault spec, e.g. seed=1,write_err_p=0.01,crash_at=5000 (chaos testing)")
		crashAfter    = fs.Duration("crash-after", 0, "chaos: SIGKILL this process after the given duration (simulated kill -9)")
		verifyTimeout = fs.Duration("verify-timeout", 0, "shutdown-verify deadline; exceeding it exits with code 3 (0 = no deadline)")
		costSpecs     stringList
	)
	fs.Var(&costSpecs, "costs", "per-tenant convex cost spec (repeatable; default linear:1 per tenant)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "unknown -log-format %q (want text or json)\n", *logFormat)
		return 2
	}
	logger := slog.New(handler)

	// Resolve the policy through the run-spec registry so serve and
	// simulate agree on names, options and cost parsing.
	costs, err := runspec.Costs(costSpecs, *tenants)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	cfg := cached.Config{
		K:        *k,
		Shards:   *shards,
		Tenants:  *tenants,
		MapStep:  *mapStep,
		Registry: obs.NewRegistry(),
	}
	if *adaptive {
		// Partition mode: an even static split seeds the quota vector; the
		// controller (ticker below and POST /v1/cache/rebalance) re-splits
		// it from the live curves and the per-tenant marginal costs.
		quotas := make([]int, *tenants)
		for t := range quotas {
			quotas[t] = *k / *tenants
			if t < *k%*tenants {
				quotas[t]++
			}
		}
		cfg.Quotas = quotas
		cfg.Costs = costs
		cfg.ReserveFloor = *reserve
	} else {
		sc := runspec.Scenario{Policies: []runspec.PolicySpec{{Name: *policyName}}, Seed: *seed}
		compiled, err := sc.CompilePolicies(*k, *tenants, costs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		cfg.NewPolicy = compiled[0].New
	}
	if *adaptive || *mrcOn {
		maxSize := *mrcMaxSize
		if maxSize <= 0 {
			maxSize = *k
		}
		cfg.MRC = &mrclive.Config{
			MaxSize:       maxSize,
			Rate:          *mrcRate,
			Seed:          uint64(*seed),
			WindowEpochs:  *mrcWindow,
			EpochRequests: *mrcEpoch,
		}
	}
	if *walDir != "" {
		w := &cached.WALConfig{
			Dir:             *walDir,
			Fsync:           cached.FsyncPolicy(*fsyncMode),
			FsyncInterval:   *fsyncEvery,
			SegmentBytes:    *segBytes,
			CheckpointEvery: *ckptEvery,
			Recover:         *walRecover,
		}
		if *walFault != "" {
			fcfg, err := fault.ParseFSSpec(*walFault)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			w.FS = fault.NewFS(fault.OSFS, fcfg, cfg.Registry)
			logger.Warn("WAL fault injection armed", "spec", *walFault)
		}
		cfg.WAL = w
	} else if *walRecover {
		fmt.Fprintln(os.Stderr, "-recover requires -wal")
		return 2
	}
	svc, err := cached.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if rep := svc.Recovery(); rep != nil {
		logger.Info("recovered from WAL", "wal", *walDir,
			"shards", rep.Shards, "entries", rep.Entries, "requests", rep.Requests,
			"replayed", rep.Replayed, "checkpoints", rep.Checkpoints,
			"truncations", rep.Truncations, "last_seq", rep.LastSeq)
	}

	// Chaos mode for the crash-smoke CI job: after the fuse burns down, die
	// the hard way — SIGKILL skips every deferred cleanup, exactly like a
	// machine losing power mid-load. Recovery must still be bit-exact.
	if *crashAfter > 0 {
		time.AfterFunc(*crashAfter, func() {
			logger.Error("chaos fuse expired, sending SIGKILL to self", "after", crashAfter.String())
			_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
		})
	}

	h := svc.Handler(cached.HTTPConfig{
		Logger:       logger,
		MaxBodyBytes: *maxBody,
		Limiter:      resilience.LimiterConfig{MaxConcurrent: *maxConcurrent},
		RateLimit:    resilience.RateLimiterConfig{RPS: *rateRPS, Burst: *rateBurst},
		Breaker:      resilience.BreakerConfig{FailureThreshold: *breakFails, OpenFor: *breakOpenFor},
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ErrorLog:          slog.NewLogLogger(handler, slog.LevelWarn),
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The capacity controller ticker: every period, merge the live curves
	// and re-split k across tenants by marginal cost, installing the new
	// quota vector only when it differs.
	var rebWG sync.WaitGroup
	if *adaptive && *rebalanceTick > 0 {
		rebWG.Add(1)
		go func() {
			defer rebWG.Done()
			tick := time.NewTicker(*rebalanceTick)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					quotas, changed, err := svc.RebalanceOnce()
					if err != nil {
						logger.Warn("rebalance failed", "err", err)
					} else if changed {
						logger.Info("rebalanced", "quotas", fmt.Sprint(quotas))
					}
				}
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		engine := *policyName
		if *adaptive {
			engine = "adaptive-partition"
		}
		logger.Info("cached listening", "addr", *addr, "k", *k, "shards", *shards,
			"tenants", *tenants, "policy", engine)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		logger.Error("listener failed", "err", err)
		return 1
	case <-ctx.Done():
	}
	stop()
	rebWG.Wait()

	logger.Info("shutting down, draining in-flight requests", "grace", shutdownGrace.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	code := 0
	if err := srv.Shutdown(drainCtx); err != nil {
		logger.Error("drain incomplete, forcing close", "err", err)
		_ = srv.Close()
		code = 1
	}
	svc.Close()

	if *verifyOnExit {
		vctx := context.Background()
		if *verifyTimeout > 0 {
			var vcancel context.CancelFunc
			vctx, vcancel = context.WithTimeout(vctx, *verifyTimeout)
			defer vcancel()
		}
		rep, err := svc.Verify(vctx)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				logger.Error("shutdown verify timed out", "timeout", verifyTimeout.String(), "err", err)
				return 3
			}
			logger.Error("shutdown verify failed", "err", err)
			return 1
		}
		logger.Info("shutdown verify", "requests", rep.Requests, "clean", rep.Clean,
			"hits", rep.Live.TotalHits, "misses", rep.Live.TotalMisses,
			"replay", rep.ReplayDur.String())
		if !rep.Clean {
			for _, d := range rep.Diffs {
				logger.Error("live-vs-replay divergence", "diff", d)
			}
			return 1
		}
	}
	logger.Info("shutdown complete")
	return code
}

func runDrive(args []string) int {
	fs := flag.NewFlagSet("cached drive", flag.ContinueOnError)
	var (
		target   = fs.String("target", "http://127.0.0.1:8090", "base URL of the cached server")
		requests = fs.Int("requests", 100_000, "total requests to drive")
		clients  = fs.Int("clients", 8, "concurrent client connections")
		batch    = fs.Int("batch", 1024, "requests per POST /v1/cache batch")
		seed     = fs.Int64("seed", 1, "workload seed")
		putFrac  = fs.Float64("put-frac", 0.25, "fraction of PUT requests")
		verify   = fs.Bool("verify", true, "hit /v1/cache/verify after the run and require a clean diff")
		timeout  = fs.Duration("timeout", 2*time.Minute, "per-request HTTP timeout")
		retries  = fs.Int("max-retries", 8, "retry budget per batch on 503/429 (0 disables retry)")
		backoff  = fs.Duration("retry-base", 50*time.Millisecond, "base delay for capped exponential backoff between retries")
		streams  stringList
	)
	fs.Var(&streams, "stream", "tenant stream spec KIND:PARAMS[:RATE] (repeatable, one per tenant)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if len(streams) == 0 {
		streams = stringList{"zipf:4000,1.2", "uniform:2000", "hotset:3000,64,0.9,5000"}
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	// Synthesize the workload up front with the tracegen/runspec stream
	// syntax: tenant t's pages come from its own stream, the next tenant is
	// picked i.i.d. by rate, keys are the tenant-local page numbers.
	type tstream struct {
		s    workload.Stream
		rate float64
	}
	ts := make([]tstream, len(streams))
	total := 0.0
	for t, spec := range streams {
		s, rate, err := workload.ParseStream(spec, *seed+int64(t)*1001)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		ts[t] = tstream{s: s, rate: rate}
		total += rate
	}
	rng := rand.New(rand.NewSource(*seed))
	batches := make([][]byte, 0, (*requests+*batch-1) / *batch)
	var buf []byte
	for i := 0; i < *requests; i++ {
		u := rng.Float64() * total
		t := 0
		for u > ts[t].rate && t < len(ts)-1 {
			u -= ts[t].rate
			t++
		}
		op := cached.OpGet
		if rng.Float64() < *putFrac {
			op = cached.OpPut
		}
		buf = cached.FormatRequest(buf, cached.Request{
			Op:     op,
			Tenant: trace.Tenant(t),
			Key:    fmt.Appendf(nil, "p%d", ts[t].s.Next()),
		})
		if (i+1)%*batch == 0 || i == *requests-1 {
			batches = append(batches, buf)
			buf = nil
		}
	}

	client := &http.Client{Timeout: *timeout}
	var hits, misses, failed, retried atomic.Int64
	next := make(chan []byte, len(batches))
	for _, b := range batches {
		next <- b
	}
	close(next)

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range next {
				var cr cached.CacheResponse
				ok := false
				for attempt := 0; ; attempt++ {
					resp, err := client.Post(*target+"/v1/cache", "text/plain", bytes.NewReader(b))
					if err != nil {
						logger.Error("post batch", "err", err)
						break
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if retryable(resp.StatusCode) {
						if attempt >= *retries {
							logger.Error("batch shed, retries exhausted",
								"status", resp.StatusCode, "attempts", attempt+1, "body", clip(body))
							break
						}
						d := retryDelay(attempt, *backoff, resp.Header.Get("Retry-After"))
						logger.Warn("batch shed, backing off",
							"status", resp.StatusCode, "attempt", attempt+1, "delay", d.String())
						retried.Add(1)
						time.Sleep(d)
						continue
					}
					if resp.StatusCode != http.StatusOK {
						logger.Error("batch rejected", "status", resp.StatusCode, "body", clip(body))
						break
					}
					if err := json.Unmarshal(body, &cr); err != nil {
						logger.Error("decode batch response", "err", err)
						break
					}
					ok = true
					break
				}
				if !ok {
					failed.Add(1)
					continue
				}
				hits.Add(int64(cr.Hits))
				misses.Add(int64(cr.Misses))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	served := hits.Load() + misses.Load()
	logger.Info("drive complete",
		"requests", served, "hits", hits.Load(), "misses", misses.Load(),
		"failed_batches", failed.Load(), "retries", retried.Load(),
		"elapsed", elapsed.String(),
		"rps", fmt.Sprintf("%.0f", float64(served)/elapsed.Seconds()))
	if failed.Load() > 0 {
		return 1
	}

	if *verify {
		resp, err := client.Post(*target+"/v1/cache/verify", "text/plain", nil)
		if err != nil {
			logger.Error("verify request", "err", err)
			return 1
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var rep cached.VerifyReport
		if err := json.Unmarshal(body, &rep); err != nil {
			logger.Error("decode verify report", "status", resp.StatusCode, "err", err, "body", clip(body))
			return 1
		}
		logger.Info("verify", "requests", rep.Requests, "shards", rep.Shards,
			"clean", rep.Clean, "replay", rep.ReplayDur.String())
		if resp.StatusCode != http.StatusOK || !rep.Clean {
			for _, d := range rep.Diffs {
				logger.Error("live-vs-replay divergence", "diff", d)
			}
			return 1
		}
	}
	return 0
}

// retryable reports whether a status is transient load-shedding — a down
// shard rebuilding from its WAL (503) or admission control (429) — rather
// than a real rejection.
func retryable(status int) bool {
	return status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests
}

// retryDelay picks the wait before re-posting a shed batch: the server's
// Retry-After hint when present, else capped exponential backoff from base,
// with ±25% jitter either way so clients don't re-converge in lockstep.
func retryDelay(attempt int, base time.Duration, retryAfter string) time.Duration {
	d := time.Duration(0)
	if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs >= 0 {
		d = time.Duration(secs) * time.Second
	}
	if d == 0 {
		d = base << uint(min(attempt, 6))
	}
	if max := 5 * time.Second; d > max {
		d = max
	}
	jitter := time.Duration(rand.Int63n(int64(d)/2+1)) - d/4
	return d + jitter
}

func clip(b []byte) string {
	if len(b) > 256 {
		return string(b[:256]) + "…"
	}
	return string(bytes.TrimSpace(b))
}
