package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestScenarioGolden replays every committed scenario through the full CLI
// path — scenario file in, markdown table out — and diffs against the
// checked-in output. The corpus is the regression net for the run-spec
// layer: any change to trace building, policy resolution, cost parsing or
// the planner that shifts a single count shows up as a golden diff.
func TestScenarioGolden(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no scenario corpus files")
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			var buf bytes.Buffer
			if err := run([]string{"-scenario", path}, &buf); err != nil {
				t.Fatalf("run: %v", err)
			}
			golden := strings.TrimSuffix(path, ".json") + ".golden"
			if *update {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("output drifted from %s:\n got:\n%s\n want:\n%s", golden, buf.Bytes(), want)
			}
		})
	}
}

// TestClassicFlagsMatchScenario asserts the flag path is just scenario
// assembly: the same run through -trace flags and through a -scenario file
// must print byte-identical tables.
func TestClassicFlagsMatchScenario(t *testing.T) {
	var flags, scenario bytes.Buffer
	if err := run([]string{
		"-trace", filepath.Join("testdata", "small.trace"),
		"-k", "4", "-policy", "alg,fifo", "-flush",
		"-cost", "monomial:1,2", "-cost", "linear:0.5",
	}, &flags); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", filepath.Join("testdata", "file-flush.json")}, &scenario); err != nil {
		t.Fatal(err)
	}
	// The flag path defaults seed=1 while the scenario leaves it 0; neither
	// policy here is randomized, so the outputs must match exactly.
	if flags.String() != scenario.String() {
		t.Fatalf("flag path diverges from scenario path:\n flags:\n%s\n scenario:\n%s", &flags, &scenario)
	}
}

func TestRunRejectsBadScenario(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"k": 4, "polcies": ["alg"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-scenario", bad}, &buf); err == nil {
		t.Fatal("typo'd field accepted")
	}
	if err := run([]string{}, &buf); err == nil {
		t.Fatal("missing -trace/-scenario accepted")
	}
}
