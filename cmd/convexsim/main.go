// Command convexsim replays a trace through one or more eviction policies
// and reports per-tenant misses and convex costs.
//
// Cost functions are given per tenant with repeated -cost flags using the
// costfn.Parse syntax (e.g. -cost monomial:1,2 -cost linear:3). Tenants
// beyond the provided list default to linear:1.
//
// Usage:
//
//	convexsim -trace t.txt -k 64 -policy alg,lru,greedy-dual \
//	          -cost monomial:1,2 -cost linear:1
//
// "alg" is the paper's algorithm (Fast implementation); the remaining names
// come from internal/policy (lru, fifo, lfu, random, marking, lru2,
// greedy-dual, static-partition, belady, belady-cost).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/policy"
	"convexcache/internal/sim"
	"convexcache/internal/stats"
	"convexcache/internal/trace"
)

type costFlags []string

func (c *costFlags) String() string { return strings.Join(*c, ";") }
func (c *costFlags) Set(v string) error {
	*c = append(*c, v)
	return nil
}

func main() {
	tracePath := flag.String("trace", "", "trace file (text format); '-' for stdin")
	k := flag.Int("k", 64, "cache size in pages")
	policies := flag.String("policy", "alg,lru", "comma-separated policy list")
	var costSpecs costFlags
	flag.Var(&costSpecs, "cost", "per-tenant cost function spec (repeatable)")
	seed := flag.Int64("seed", 1, "seed for randomized policies")
	discreteDeriv := flag.Bool("discrete-deriv", false, "use finite differences in the algorithm (arbitrary cost functions)")
	countMisses := flag.Bool("count-misses", false, "drive the algorithm by fetch counts instead of eviction counts")
	flush := flag.Bool("flush", false, "append the paper's dummy-tenant flush so eviction counts equal miss counts")
	metrics := flag.Bool("metrics", false, "print eviction-age and occupancy metrics per policy")
	blockCSV := flag.Bool("block-csv", false, "parse the trace as MSR-style block-I/O CSV instead of the native formats")
	pageBytes := flag.Int64("page-bytes", 4096, "page size for -block-csv")
	flag.Parse()

	if *tracePath == "" {
		fatal(fmt.Errorf("-trace is required"))
	}
	var in *os.File
	if *tracePath == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	var tr *trace.Trace
	var err error
	if *blockCSV {
		tr, err = trace.ReadBlockCSV(in, trace.CSVOptions{PageBytes: *pageBytes})
	} else {
		tr, err = trace.ReadAuto(in)
	}
	if err != nil {
		fatal(err)
	}
	realTenants := tr.NumTenants()
	if *flush {
		flushed, dummy, err := trace.WithFlush(tr, *k)
		if err != nil {
			fatal(err)
		}
		tr = flushed
		_ = dummy
	}
	costs := make([]costfn.Func, tr.NumTenants())
	for i := range costs {
		switch {
		case i < len(costSpecs):
			f, err := costfn.Parse(costSpecs[i])
			if err != nil {
				fatal(err)
			}
			costs[i] = f
		case i >= realTenants:
			costs[i] = core.FlushCost() // dummy flush tenant
		default:
			costs[i] = costfn.Linear{W: 1}
		}
	}
	opt := core.Options{Costs: costs, UseDiscreteDeriv: *discreteDeriv, CountMisses: *countMisses}
	spec := policy.Spec{K: *k, Tenants: tr.NumTenants(), Costs: costs, Seed: *seed}

	tb := stats.NewTable(fmt.Sprintf("convexsim: T=%d tenants=%d k=%d", tr.Len(), tr.NumTenants(), *k),
		"policy", "hits", "misses", "evictions", "total cost", "per-tenant misses")
	for _, name := range strings.Split(*policies, ",") {
		name = strings.TrimSpace(name)
		var p sim.Policy
		if name == "alg" {
			p = core.NewFast(opt)
		} else {
			var err error
			p, err = policy.New(name, spec)
			if err != nil {
				fatal(err)
			}
		}
		var collector *sim.Collector
		cfg := sim.Config{K: *k}
		if *metrics {
			collector = sim.NewCollector(tr.NumTenants(), max(tr.Len()/20, 1))
			cfg.Observer = collector.Observe
		}
		res, err := sim.Run(tr, p, cfg)
		if err != nil {
			fatal(err)
		}
		if collector != nil {
			if ages, err := collector.EvictionAges(); err == nil {
				fmt.Printf("%s: eviction age mean=%.1f median=%.1f max=%.0f; occupancy=%v\n",
					name, ages.Mean, ages.Median, ages.Max, fmtShares(collector.AvgOccupancy()))
			}
		}
		perTenant := make([]string, len(res.Misses))
		for i, m := range res.Misses {
			perTenant[i] = fmt.Sprintf("%d", m)
		}
		tb.AddRow(name, res.Hits, res.TotalMisses(), res.TotalEvictions(),
			res.Cost(costs[:realTenants]), strings.Join(perTenant, "/"))
	}
	if err := tb.WriteMarkdown(os.Stdout); err != nil {
		fatal(err)
	}
}

// fmtShares renders occupancy fractions compactly.
func fmtShares(xs []float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%.2f", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "convexsim:", err)
	os.Exit(1)
}
