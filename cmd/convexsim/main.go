// Command convexsim replays a trace through one or more eviction policies
// and reports per-tenant misses and convex costs.
//
// Runs are described by the shared run-spec layer (internal/runspec): pass
// a full scenario file with -scenario, or assemble one from the classic
// flags. Cost functions are given per tenant with repeated -cost flags
// using the costfn.Parse syntax (e.g. -cost monomial:1,2 -cost linear:3).
// Tenants beyond the provided list default to linear:1.
//
// Usage:
//
//	convexsim -trace t.txt -k 64 -policy alg,lru,greedy-dual \
//	          -cost monomial:1,2 -cost linear:1
//	convexsim -scenario scenario.json
//
// "alg" is the paper's algorithm (Fast implementation), "alg-ref" the
// Figure-3 reference; the remaining names come from internal/policy (lru,
// fifo, lfu, random, marking, lru2, greedy-dual, static-partition, belady,
// belady-cost).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"convexcache/internal/runspec"
	"convexcache/internal/sim"
	"convexcache/internal/stats"
	"convexcache/internal/trace"
)

type costFlags []string

func (c *costFlags) String() string { return strings.Join(*c, ";") }
func (c *costFlags) Set(v string) error {
	*c = append(*c, v)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fatal(err)
	}
}

// run is main behind a testable seam: the scenario-golden tests drive it
// with testdata arguments and capture stdout.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("convexsim", flag.ContinueOnError)
	scenarioPath := fs.String("scenario", "", "run-spec scenario file (JSON); overrides the flags below")
	tracePath := fs.String("trace", "", "trace file (text format); '-' for stdin")
	k := fs.Int("k", 64, "cache size in pages")
	policies := fs.String("policy", "alg,lru", "comma-separated policy list")
	var costSpecs costFlags
	fs.Var(&costSpecs, "cost", "per-tenant cost function spec (repeatable)")
	seed := fs.Int64("seed", 1, "seed for randomized policies")
	discreteDeriv := fs.Bool("discrete-deriv", false, "use finite differences in the algorithm (arbitrary cost functions)")
	countMisses := fs.Bool("count-misses", false, "drive the algorithm by fetch counts instead of eviction counts")
	flush := fs.Bool("flush", false, "append the paper's dummy-tenant flush so eviction counts equal miss counts")
	metrics := fs.Bool("metrics", false, "print eviction-age and occupancy metrics per policy")
	blockCSV := fs.Bool("block-csv", false, "parse the trace as MSR-style block-I/O CSV instead of the native formats")
	pageBytes := fs.Int64("page-bytes", 4096, "page size for -block-csv")
	shards := fs.Int("shards", 0, "replay each policy via deterministic sharded replay with this many workers (dense engine, no -metrics)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var sc *runspec.Scenario
	if *scenarioPath != "" {
		var err error
		if sc, err = runspec.ParseScenarioFile(*scenarioPath); err != nil {
			return err
		}
	} else {
		if *tracePath == "" {
			return fmt.Errorf("-trace or -scenario is required")
		}
		sc = &runspec.Scenario{
			Trace:  runspec.TraceSpec{File: *tracePath},
			Costs:  costSpecs,
			K:      *k,
			Seed:   *seed,
			Flush:  *flush,
			Shards: *shards,
		}
		if *blockCSV {
			sc.Trace.Format = "block-csv"
			sc.Trace.PageBytes = *pageBytes
		}
		for _, name := range strings.Split(*policies, ",") {
			ps := runspec.PolicySpec{Name: strings.TrimSpace(name)}
			if ps.Name == "alg" || ps.Name == "alg-ref" {
				ps.DiscreteDeriv = *discreteDeriv
				ps.CountMisses = *countMisses
			}
			sc.Policies = append(sc.Policies, ps)
		}
	}

	var collectors map[string]*sim.Collector
	if *metrics {
		collectors = make(map[string]*sim.Collector)
		sc.RowObserver = func(policy string, k int, tr *trace.Trace) sim.Observer {
			c := sim.NewCollector(tr.NumTenants(), max(tr.Len()/20, 1))
			collectors[fmt.Sprintf("%s@%d", policy, k)] = c
			return c.Observe
		}
	}

	out, err := sc.Execute(context.Background())
	if err != nil {
		return err
	}
	tb := stats.NewTable(
		fmt.Sprintf("convexsim: T=%d tenants=%d k=%d", out.Trace.Len(), out.Trace.NumTenants(), firstK(sc)),
		"policy", "hits", "misses", "evictions", "total cost", "per-tenant misses")
	for _, row := range out.Rows {
		if row.Err != nil {
			return row.Err
		}
		if c := collectors[fmt.Sprintf("%s@%d", row.Policy, row.K)]; c != nil {
			if ages, err := c.EvictionAges(); err == nil {
				fmt.Fprintf(stdout, "%s: eviction age mean=%.1f median=%.1f max=%.0f; occupancy=%v\n",
					row.Policy, ages.Mean, ages.Median, ages.Max, fmtShares(c.AvgOccupancy()))
			}
		}
		perTenant := make([]string, len(row.Result.Misses))
		for i, m := range row.Result.Misses {
			perTenant[i] = fmt.Sprintf("%d", m)
		}
		label := row.Policy
		if len(sc.KSweep) > 0 {
			label = fmt.Sprintf("%s@k=%d", row.Policy, row.K)
		}
		tb.AddRow(label, row.Result.Hits, row.Result.TotalMisses(), row.Result.TotalEvictions(),
			row.Cost, strings.Join(perTenant, "/"))
	}
	return tb.WriteMarkdown(stdout)
}

// firstK labels the table header: the single k, or the first sweep entry.
func firstK(sc *runspec.Scenario) int {
	if len(sc.KSweep) > 0 {
		return sc.KSweep[0]
	}
	return sc.K
}

// fmtShares renders occupancy fractions compactly.
func fmtShares(xs []float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%.2f", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "convexsim:", err)
	os.Exit(1)
}
