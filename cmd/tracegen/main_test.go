package main

import "testing"

func TestParseStreamValid(t *testing.T) {
	cases := []struct {
		spec     string
		pages    int64
		wantRate float64
	}{
		{"zipf:100,1.0", 100, 1},
		{"zipf:100,0.5:2.5", 100, 2.5},
		{"uniform:64", 64, 1},
		{"scan:10:3", 10, 3},
		{"hotset:100,5,0.9,50", 100, 1},
		{"markov:40,0.8,2", 40, 1},
	}
	for _, tc := range cases {
		s, rate, err := parseStream(tc.spec, 1)
		if err != nil {
			t.Errorf("parseStream(%q): %v", tc.spec, err)
			continue
		}
		if s.Pages() != tc.pages {
			t.Errorf("parseStream(%q): pages = %d, want %d", tc.spec, s.Pages(), tc.pages)
		}
		if rate != tc.wantRate {
			t.Errorf("parseStream(%q): rate = %g, want %g", tc.spec, rate, tc.wantRate)
		}
	}
}

func TestParseStreamInvalid(t *testing.T) {
	bad := []string{
		"",
		"zipf",          // no params
		"zipf:100",      // missing exponent
		"zipf:100,1:0",  // zero rate
		"zipf:100,1:x",  // bad rate
		"zipf:0,1",      // zero pages
		"scan:abc",      // non-numeric
		"hotset:100,5",  // missing params
		"markov:40,2,1", // stay > 1
		"bogus:1,2",     // unknown kind
		"zipf:1,2:3:4",  // too many colons
	}
	for _, spec := range bad {
		if _, _, err := parseStream(spec, 1); err == nil {
			t.Errorf("parseStream(%q) unexpectedly succeeded", spec)
		}
	}
}
