package main

import (
	"testing"

	"convexcache/internal/runspec"
)

// buildFor assembles the workload exactly the way main does.
func buildFor(t *testing.T, specs []string, length int, seed int64) *runspec.Scenario {
	t.Helper()
	w := &runspec.WorkloadSpec{Length: length, Seed: seed}
	for _, spec := range specs {
		w.Tenants = append(w.Tenants, runspec.TenantSpec{Stream: spec})
	}
	return &runspec.Scenario{Trace: runspec.TraceSpec{Workload: w}}
}

// TestGenerateDeterministic pins the tracegen contract after the move onto
// the run-spec layer: same specs + seed produce the identical trace, and a
// different seed a different one.
func TestGenerateDeterministic(t *testing.T) {
	specs := []string{"zipf:100,1.0", "scan:50:2", "hotset:100,5,0.9,50"}
	a, err := buildFor(t, specs, 4000, 7).BuildTrace()
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildFor(t, specs, 4000, 7).BuildTrace()
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 4000 || a.NumTenants() != 3 {
		t.Fatalf("trace shape: len=%d tenants=%d", a.Len(), a.NumTenants())
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("step %d differs across identical builds: %v vs %v", i, a.At(i), b.At(i))
		}
	}
	c, err := buildFor(t, specs, 4000, 8).BuildTrace()
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != c.At(i) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical trace")
	}
}

// TestBadSpecsRejected keeps CLI error behavior: a bad spec must surface
// from BuildTrace (the grammar itself is tested in internal/workload).
func TestBadSpecsRejected(t *testing.T) {
	bad := []string{"", "zipf", "zipf:100", "zipf:100,1:0", "bogus:1,2", "zipf:1,2:3:4"}
	for _, spec := range bad {
		if _, err := buildFor(t, []string{spec}, 100, 1).BuildTrace(); err == nil {
			t.Errorf("spec %q unexpectedly accepted", spec)
		}
	}
}
