// Command tracegen generates multi-tenant request traces in the text format
// of internal/trace and prints their statistics.
//
// Each -tenant flag adds one tenant stream as
// KIND:PARAMS[:RATE], where KIND is one of
//
//	zipf:N,S          Zipf over N pages with exponent S
//	uniform:N         uniform over N pages
//	scan:N            cyclic scan over N pages
//	hotset:N,H,P,L    hot set of H in N pages, hot prob P, phase length L
//	markov:N,P,J      random walk over N pages, stay prob P, jump radius J
//	db:H,S,P,L        DB tenant: H heap pages, key skew S, scan prob P, scan len L
//
// and RATE (default 1) is the tenant's relative request rate. The spec
// syntax is the run-spec layer's workload syntax (workload.ParseStream), so
// a tenant list tried here drops verbatim into a scenario file.
//
// Usage:
//
//	tracegen -tenant zipf:100,1.0 -tenant scan:50:2 -len 10000 -seed 7 -o trace.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"convexcache/internal/runspec"
	"convexcache/internal/trace"
)

type tenantFlags []string

func (t *tenantFlags) String() string { return strings.Join(*t, ";") }
func (t *tenantFlags) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func main() {
	var tenants tenantFlags
	flag.Var(&tenants, "tenant", "tenant stream spec (repeatable)")
	length := flag.Int("len", 10000, "trace length in requests")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output file (default stdout)")
	statsOnly := flag.Bool("stats", false, "print statistics only, no trace")
	binaryOut := flag.Bool("binary", false, "write the compact binary (CXT1) format")
	flag.Parse()

	if len(tenants) == 0 {
		fatal(fmt.Errorf("at least one -tenant spec is required"))
	}
	w := &runspec.WorkloadSpec{Length: *length, Seed: *seed}
	for _, spec := range tenants {
		w.Tenants = append(w.Tenants, runspec.TenantSpec{Stream: spec})
	}
	tr, err := (&runspec.Scenario{Trace: runspec.TraceSpec{Workload: w}}).BuildTrace()
	if err != nil {
		fatal(err)
	}
	st := tr.ComputeStats()
	fmt.Fprintf(os.Stderr, "trace: T=%d pages=%d tenants=%d cold=%d per-tenant-reqs=%v\n",
		st.Requests, st.DistinctPages, st.Tenants, st.ColdMisses, st.PerTenantRequests)
	if *statsOnly {
		return
	}
	f := os.Stdout
	if *out != "" {
		var err error
		if f, err = os.Create(*out); err != nil {
			fatal(err)
		}
		defer f.Close()
	}
	if *binaryOut {
		err = trace.WriteBinary(f, tr)
	} else {
		err = trace.Write(f, tr)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
