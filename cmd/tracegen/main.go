// Command tracegen generates multi-tenant request traces in the text format
// of internal/trace and prints their statistics.
//
// Each -tenant flag adds one tenant stream as
// KIND:PARAMS[:RATE], where KIND is one of
//
//	zipf:N,S          Zipf over N pages with exponent S
//	uniform:N         uniform over N pages
//	scan:N            cyclic scan over N pages
//	hotset:N,H,P,L    hot set of H in N pages, hot prob P, phase length L
//	markov:N,P,J      random walk over N pages, stay prob P, jump radius J
//	db:H,S,P,L        DB tenant: H heap pages, key skew S, scan prob P, scan len L
//
// and RATE (default 1) is the tenant's relative request rate.
//
// Usage:
//
//	tracegen -tenant zipf:100,1.0 -tenant scan:50:2 -len 10000 -seed 7 -o trace.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"convexcache/internal/trace"
	"convexcache/internal/workload"
)

type tenantFlags []string

func (t *tenantFlags) String() string { return strings.Join(*t, ";") }
func (t *tenantFlags) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func main() {
	var tenants tenantFlags
	flag.Var(&tenants, "tenant", "tenant stream spec (repeatable)")
	length := flag.Int("len", 10000, "trace length in requests")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output file (default stdout)")
	statsOnly := flag.Bool("stats", false, "print statistics only, no trace")
	binaryOut := flag.Bool("binary", false, "write the compact binary (CXT1) format")
	flag.Parse()

	if len(tenants) == 0 {
		fatal(fmt.Errorf("at least one -tenant spec is required"))
	}
	streams := make([]workload.TenantStream, 0, len(tenants))
	for i, spec := range tenants {
		s, rate, err := parseStream(spec, *seed+int64(i)*1001)
		if err != nil {
			fatal(err)
		}
		streams = append(streams, workload.TenantStream{
			Tenant: trace.Tenant(i), Stream: s, Rate: rate,
		})
	}
	tr, err := workload.Mix(*seed, streams, *length)
	if err != nil {
		fatal(err)
	}
	st := tr.ComputeStats()
	fmt.Fprintf(os.Stderr, "trace: T=%d pages=%d tenants=%d cold=%d per-tenant-reqs=%v\n",
		st.Requests, st.DistinctPages, st.Tenants, st.ColdMisses, st.PerTenantRequests)
	if *statsOnly {
		return
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if *binaryOut {
		err = trace.WriteBinary(w, tr)
	} else {
		err = trace.Write(w, tr)
	}
	if err != nil {
		fatal(err)
	}
}

// parseStream builds one stream from KIND:PARAMS[:RATE].
func parseStream(spec string, seed int64) (workload.Stream, float64, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return nil, 0, fmt.Errorf("tracegen: bad spec %q, want KIND:PARAMS[:RATE]", spec)
	}
	rate := 1.0
	if len(parts) == 3 {
		r, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || r <= 0 {
			return nil, 0, fmt.Errorf("tracegen: bad rate in %q", spec)
		}
		rate = r
	}
	nums := strings.Split(parts[1], ",")
	arg := func(i int) (float64, error) {
		if i >= len(nums) {
			return 0, fmt.Errorf("tracegen: spec %q missing parameter %d", spec, i+1)
		}
		return strconv.ParseFloat(nums[i], 64)
	}
	switch parts[0] {
	case "zipf":
		n, err := arg(0)
		if err != nil {
			return nil, 0, err
		}
		s, err := arg(1)
		if err != nil {
			return nil, 0, err
		}
		st, err := workload.NewZipf(seed, int64(n), s)
		return st, rate, err
	case "uniform":
		n, err := arg(0)
		if err != nil {
			return nil, 0, err
		}
		st, err := workload.NewUniform(seed, int64(n))
		return st, rate, err
	case "scan":
		n, err := arg(0)
		if err != nil {
			return nil, 0, err
		}
		st, err := workload.NewScan(int64(n))
		return st, rate, err
	case "hotset":
		n, err := arg(0)
		if err != nil {
			return nil, 0, err
		}
		h, err := arg(1)
		if err != nil {
			return nil, 0, err
		}
		p, err := arg(2)
		if err != nil {
			return nil, 0, err
		}
		l, err := arg(3)
		if err != nil {
			return nil, 0, err
		}
		st, err := workload.NewHotSet(seed, int64(n), int64(h), p, int64(l))
		return st, rate, err
	case "db":
		h, err := arg(0)
		if err != nil {
			return nil, 0, err
		}
		sk, err := arg(1)
		if err != nil {
			return nil, 0, err
		}
		sp, err := arg(2)
		if err != nil {
			return nil, 0, err
		}
		sl, err := arg(3)
		if err != nil {
			return nil, 0, err
		}
		st, err := workload.NewDB(seed, int64(h), sk, sp, int64(sl))
		return st, rate, err
	case "markov":
		n, err := arg(0)
		if err != nil {
			return nil, 0, err
		}
		p, err := arg(1)
		if err != nil {
			return nil, 0, err
		}
		j, err := arg(2)
		if err != nil {
			return nil, 0, err
		}
		st, err := workload.NewMarkov(seed, int64(n), p, int64(j))
		return st, rate, err
	default:
		return nil, 0, fmt.Errorf("tracegen: unknown stream kind %q", parts[0])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
