// Command bench is the repeatable performance harness of the repo: it runs
// the E10 raw-throughput suite (every policy implementation over the large
// multi-tenant Zipf mix at several cache sizes), the sharded-replay
// aggregate suite, and the per-experiment table benchmarks, and writes a
// machine-readable JSON report (ns/op, requests/sec, allocs/op) so
// successive PRs leave a perf trajectory (BENCH_PR1.json, BENCH_PR2.json,
// ...). Reports are self-describing: they record the Go version,
// GOMAXPROCS, the git commit, the engine batch size and the shard counts
// measured, so a number can always be traced back to its machine shape.
//
// Usage:
//
//	bench [-out BENCH.json] [-before prior.json] [-skip-experiments]
//	      [-benchtime 1s] [-cpuprofile cpu.prof] [-memprofile mem.prof]
//	bench -compare BENCH_PRn.json [-threshold 10]
//
// -before embeds a previous report under "before" (and the fresh run under
// "after"), producing the before/after pair an optimization PR commits.
//
// -compare is the regression gate's engine: it runs the fresh suite,
// matches benchmarks by name against the given report (a bare report or
// the "after" half of a before/after pair), prints the per-benchmark delta
// %, and exits non-zero when any benchmark regressed by more than
// -threshold percent (throughput drop for req/s benchmarks, time increase
// for the rest). Compare two runs from the same machine: absolute numbers
// do not transfer across hosts.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"convexcache/internal/cached"
	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/experiments"
	"convexcache/internal/policy"
	"convexcache/internal/runspec"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// Result is one benchmark's measurements.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	ReqPerSec   float64 `json:"req_per_sec,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Report is the full harness output.
type Report struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	// Commit is the git HEAD the binary was run from ("" outside a repo).
	Commit string `json:"commit,omitempty"`
	// BatchSize is the dense engine's StepBatch run length.
	BatchSize int `json:"batch_size,omitempty"`
	// ShardCounts lists the RunSharded worker counts the sharded suite
	// measured.
	ShardCounts []int `json:"shard_counts,omitempty"`
	// Note carries free-form provenance (e.g. which engine a baseline was
	// measured against).
	Note       string   `json:"note,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// Comparison pairs a prior report with a fresh one.
type Comparison struct {
	Before *Report `json:"before,omitempty"`
	After  Report  `json:"after"`
}

var shardCounts = []int{8}

// repeats is how many times each benchmark is measured; the fastest run is
// reported. Scheduling noise only ever slows a benchmark down, so best-of-N
// is the stable estimate of capability — the regression gate uses -repeat 3
// to keep noisy runners from flapping.
var repeats = 1

// measure runs fn through testing.Benchmark `repeats` times and keeps the
// fastest run.
func measure(fn func(b *testing.B)) testing.BenchmarkResult {
	best := testing.Benchmark(fn)
	for i := 1; i < repeats; i++ {
		r := testing.Benchmark(fn)
		if float64(r.T.Nanoseconds())/float64(r.N) < float64(best.T.Nanoseconds())/float64(best.N) {
			best = r
		}
	}
	return best
}

func main() {
	testing.Init()
	outPath := flag.String("out", "BENCH.json", "output JSON path")
	beforePath := flag.String("before", "", "prior report to embed under \"before\"")
	comparePath := flag.String("compare", "", "prior report to gate against: print per-benchmark deltas, exit non-zero past -threshold")
	threshold := flag.Float64("threshold", 10, "regression threshold in percent for -compare")
	skipExp := flag.Bool("skip-experiments", false, "run only the throughput suites")
	benchtime := flag.String("benchtime", "", "per-benchmark measuring time (passed to testing, e.g. 200ms)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at the end of the run to this file")
	note := flag.String("note", "", "free-form provenance recorded in the report")
	repeat := flag.Int("repeat", 1, "measure each benchmark n times and report the fastest run")
	flag.Parse()
	if *repeat > 0 {
		repeats = *repeat
	}

	if *benchtime != "" {
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			fatal(fmt.Errorf("-benchtime: %w", err))
		}
	}

	// Validate file arguments up front so a typo'd path fails before
	// minutes of benchmarking.
	var before *Report
	if *beforePath != "" {
		var err error
		if before, err = loadReport(*beforePath); err != nil {
			fatal(err)
		}
	}
	var baseline *Report
	if *comparePath != "" {
		var err error
		if baseline, err = loadReport(*comparePath); err != nil {
			fatal(err)
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	rep := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Commit:      gitCommit(),
		BatchSize:   sim.BatchSize,
		ShardCounts: shardCounts,
		Note:        *note,
	}
	rep.Benchmarks = append(rep.Benchmarks, throughputSuite()...)
	rep.Benchmarks = append(rep.Benchmarks, shardedSuite()...)
	rep.Benchmarks = append(rep.Benchmarks, liveSuite()...)
	if !*skipExp {
		rep.Benchmarks = append(rep.Benchmarks, experimentSuite()...)
	}

	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	if baseline != nil {
		regressions := compare(baseline, &rep, *threshold)
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "bench: %d benchmark(s) regressed more than %.0f%%\n", regressions, *threshold)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench: no regression beyond %.0f%%\n", *threshold)
		return
	}

	payload := Comparison{Before: before, After: rep}
	f, err := os.Create(*outPath)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(payload); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %d results to %s\n", len(rep.Benchmarks), *outPath)
}

// loadReport reads a report file, accepting either a bare Report or a
// before/after Comparison (the "after" half is used).
func loadReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cmp Comparison
	if err := json.Unmarshal(raw, &cmp); err != nil {
		return nil, fmt.Errorf("parse report %s: %w", path, err)
	}
	if len(cmp.After.Benchmarks) > 0 {
		return &cmp.After, nil
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("parse report %s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("report %s contains no benchmarks", path)
	}
	return &rep, nil
}

// compare prints the per-benchmark delta of fresh against base and returns
// how many benchmarks regressed beyond the threshold (percent). Throughput
// benchmarks gate on req/s drops, the rest on ns/op increases; benchmarks
// present on only one side are reported but never gate.
func compare(base, fresh *Report, threshold float64) int {
	byName := make(map[string]Result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		byName[r.Name] = r
	}
	regressions := 0
	for _, now := range fresh.Benchmarks {
		was, ok := byName[now.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "bench: %-34s (new, no baseline)\n", now.Name)
			continue
		}
		delete(byName, now.Name)
		var delta float64
		var unit string
		if was.ReqPerSec > 0 && now.ReqPerSec > 0 {
			// Positive delta = faster.
			delta = (now.ReqPerSec - was.ReqPerSec) / was.ReqPerSec * 100
			unit = "req/s"
		} else if was.NsPerOp > 0 {
			// Negate so positive still means faster.
			delta = -(now.NsPerOp - was.NsPerOp) / was.NsPerOp * 100
			unit = "ns/op"
		} else {
			continue
		}
		marker := ""
		if delta < -threshold {
			marker = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(os.Stderr, "bench: %-34s %+7.1f%% (%s)%s\n", now.Name, delta, unit, marker)
	}
	for name := range byName {
		fmt.Fprintf(os.Stderr, "bench: %-34s (baseline only, not run)\n", name)
	}
	return regressions
}

// gitCommit resolves the current HEAD for report provenance; best-effort.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// benchTrace mirrors the E10 workload of bench_test.go: a 4-tenant Zipf mix
// over 4096-page universes, 200k requests. The per-tenant seeds are pinned
// to the historical i+1 so the workload is bit-identical across reports.
func benchTrace(tenants int, pagesPer int64, length int) *trace.Trace {
	w := &runspec.WorkloadSpec{Length: length, Seed: 42}
	for i := 0; i < tenants; i++ {
		seed := int64(i + 1)
		w.Tenants = append(w.Tenants, runspec.TenantSpec{
			Stream: fmt.Sprintf("zipf:%d,0.9", pagesPer), Seed: &seed,
		})
	}
	tr, err := (&runspec.Scenario{Trace: runspec.TraceSpec{Workload: w}}).BuildTrace()
	if err != nil {
		fatal(err)
	}
	return tr
}

func benchCosts(tenants int) []costfn.Func {
	costs := make([]costfn.Func, tenants)
	for i := range costs {
		if i%2 == 0 {
			costs[i] = costfn.Monomial{C: 1, Beta: 2}
		} else {
			costs[i] = costfn.Linear{W: float64(i + 1)}
		}
	}
	return costs
}

// throughputSuite is the E10 matrix: policies x cache sizes on the shared
// large trace, reported as requests/sec. The fast policy is measured twice:
// on the batched dense loop (its production path) and with NoBatch pinning
// the per-step loop, so every report carries its own batching speedup.
func throughputSuite() []Result {
	tr := benchTrace(4, 4096, 200_000)
	tr.Dense() // densify once, outside every measured region
	costs := benchCosts(4)
	type entry struct {
		name    string
		mk      func() sim.Policy
		ks      []int
		noBatch bool
	}
	all := []int{256, 4096, 65536}
	suite := []entry{
		{"fast", func() sim.Policy { return core.NewFast(core.Options{Costs: costs}) }, all, false},
		{"fast-per-step", func() sim.Policy { return core.NewFast(core.Options{Costs: costs}) }, all, true},
		// The reference implementation is O(cache) per eviction; only the
		// smallest size is tractable at benchmark scale.
		{"discrete", func() sim.Policy { return core.NewDiscrete(core.Options{Costs: costs}) }, []int{256}, false},
		{"lru", func() sim.Policy { return policy.NewLRU() }, all, false},
		{"greedy-dual", func() sim.Policy { return policy.NewGreedyDual([]float64{1, 2, 3, 4}) }, all, false},
	}
	var out []Result
	for _, e := range suite {
		for _, k := range e.ks {
			name := fmt.Sprintf("throughput/%s/k=%d", e.name, k)
			cfg := sim.Config{K: k, NoBatch: e.noBatch}
			r := measure(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					p := e.mk()
					if _, err := sim.Run(tr, p, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
			res := toResult(name, r)
			res.ReqPerSec = float64(tr.Len()*r.N) / r.T.Seconds()
			out = append(out, res)
			fmt.Fprintf(os.Stderr, "bench: %-28s %12.0f req/s %8d allocs/op\n", name, res.ReqPerSec, res.AllocsPerOp)
		}
	}
	return out
}

// shardedSuite measures deterministic sharded replay: the same trace
// partitioned across n single-writer dense engines replayed concurrently.
// The shard plan is built once outside the measured region, like the dense
// remap. Aggregate req/s scales with cores; the report's gomaxprocs field
// says how many this run had.
func shardedSuite() []Result {
	tr := benchTrace(4, 4096, 200_000)
	tr.Dense()
	costs := benchCosts(4)
	mk := func() sim.Policy { return core.NewFast(core.Options{Costs: costs}) }
	ctx := context.Background()
	var out []Result
	for _, n := range shardCounts {
		pl, err := sim.BuildShards(tr, n)
		if err != nil {
			fatal(err)
		}
		for _, k := range []int{256, 4096, 65536} {
			if k < n {
				continue
			}
			name := fmt.Sprintf("throughput/fast-sharded/n=%d/k=%d", n, k)
			cfg := sim.Config{K: k}
			r := measure(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := pl.Run(ctx, mk, cfg, n); err != nil {
						b.Fatal(err)
					}
				}
			})
			res := toResult(name, r)
			res.ReqPerSec = float64(tr.Len()*r.N) / r.T.Seconds()
			out = append(out, res)
			fmt.Fprintf(os.Stderr, "bench: %-28s %12.0f req/s %8d allocs/op\n", name, res.ReqPerSec, res.AllocsPerOp)
		}
	}
	return out
}

// liveSuite measures the live cache service end to end: a single-shard
// cached.Service fed the shared trace as wire-shaped requests through Apply
// in mailbox-sized batches, once on the dense shard core (the production
// path) and once on the map-mode reference step (Config.MapStep) — so every
// report carries the live fast-path speedup next to the replay numbers it
// chases. Each iteration builds a fresh service, so interning and routing
// overhead is measured, not amortized away; both modes pay it identically.
func liveSuite() []Result {
	tr := benchTrace(4, 4096, 200_000)
	costs := benchCosts(4)
	tenants := tr.NumTenants()
	reqs := make([]cached.Request, tr.Len())
	// One arena backs every key so the request set is a handful of heap
	// objects, not tr.Len() of them — the benchmark should weigh the
	// service, not the collector marking its input.
	arena := make([]byte, 0, 10*tr.Len())
	for i, r := range tr.Requests() {
		base := len(arena)
		arena = fmt.Appendf(arena, "p%d", r.Page)
		reqs[i] = cached.Request{Op: cached.OpGet, Tenant: r.Tenant, Key: arena[base:len(arena):len(arena)]}
	}
	const k = 4096
	const batch = 512
	modes := []struct {
		name    string
		mapStep bool
	}{
		{"live/fast-dense/n=1/k=4096", false},
		{"live/fast-map/n=1/k=4096", true},
	}
	var out []Result
	for _, m := range modes {
		r := measure(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				svc, err := cached.New(cached.Config{
					K: k, Shards: 1, Tenants: tenants, MapStep: m.mapStep,
					NewPolicy: func() sim.Policy { return core.NewFast(core.Options{Costs: costs}) },
				})
				if err != nil {
					b.Fatal(err)
				}
				for lo := 0; lo < len(reqs); lo += batch {
					hi := lo + batch
					if hi > len(reqs) {
						hi = len(reqs)
					}
					if _, err := svc.Apply(reqs[lo:hi]); err != nil {
						svc.Close()
						b.Fatal(err)
					}
				}
				svc.Close()
			}
		})
		res := toResult(m.name, r)
		res.ReqPerSec = float64(tr.Len()*r.N) / r.T.Seconds()
		out = append(out, res)
		fmt.Fprintf(os.Stderr, "bench: %-28s %12.0f req/s %8d allocs/op\n", m.name, res.ReqPerSec, res.AllocsPerOp)
	}
	return out
}

// experimentSuite benchmarks each experiment table end to end in quick mode,
// the same measurements as the BenchmarkExp* functions in bench_test.go.
func experimentSuite() []Result {
	var out []Result
	for _, e := range experiments.All() {
		run := e.Run
		name := "experiment/" + e.ID
		r := measure(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tb, err := run(true)
				if err != nil {
					b.Fatal(err)
				}
				if tb.NumRows() == 0 {
					b.Fatal("experiment produced no rows")
				}
			}
		})
		out = append(out, toResult(name, r))
		fmt.Fprintf(os.Stderr, "bench: %-28s %12.2f ms/op\n", name, float64(r.NsPerOp())/1e6)
	}
	return out
}

func toResult(name string, r testing.BenchmarkResult) Result {
	return Result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
