// Command bench is the repeatable performance harness of the repo: it runs
// the E10 raw-throughput suite (every policy implementation over the large
// multi-tenant Zipf mix at several cache sizes) plus the per-experiment
// table benchmarks, and writes a machine-readable JSON report (ns/op,
// requests/sec, allocs/op) so successive PRs leave a perf trajectory
// (BENCH_PR1.json, BENCH_PR2.json, ...).
//
// Usage:
//
//	bench [-out BENCH.json] [-before prior.json] [-skip-experiments]
//
// -before embeds a previous report under "before" (and the fresh run under
// "after"), producing the before/after pair an optimization PR commits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/experiments"
	"convexcache/internal/policy"
	"convexcache/internal/runspec"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// Result is one benchmark's measurements.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	ReqPerSec   float64 `json:"req_per_sec,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Report is the full harness output.
type Report struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	// Note carries free-form provenance (e.g. which engine a baseline was
	// measured against).
	Note       string   `json:"note,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// Comparison pairs a prior report with a fresh one.
type Comparison struct {
	Before *Report `json:"before,omitempty"`
	After  Report  `json:"after"`
}

func main() {
	outPath := flag.String("out", "BENCH.json", "output JSON path")
	beforePath := flag.String("before", "", "prior report to embed under \"before\"")
	skipExp := flag.Bool("skip-experiments", false, "run only the E10 throughput suite")
	flag.Parse()

	// Validate -before up front so a typo'd path fails before minutes of
	// benchmarking.
	var before *Report
	if *beforePath != "" {
		raw, err := os.ReadFile(*beforePath)
		if err != nil {
			fatal(err)
		}
		before = &Report{}
		if err := json.Unmarshal(raw, before); err != nil {
			fatal(fmt.Errorf("parse -before report: %w", err))
		}
	}

	rep := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	rep.Benchmarks = append(rep.Benchmarks, throughputSuite()...)
	if !*skipExp {
		rep.Benchmarks = append(rep.Benchmarks, experimentSuite()...)
	}

	payload := Comparison{Before: before, After: rep}
	f, err := os.Create(*outPath)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(payload); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %d results to %s\n", len(rep.Benchmarks), *outPath)
}

// benchTrace mirrors the E10 workload of bench_test.go: a 4-tenant Zipf mix
// over 4096-page universes, 200k requests. The per-tenant seeds are pinned
// to the historical i+1 so the workload is bit-identical across reports.
func benchTrace(tenants int, pagesPer int64, length int) *trace.Trace {
	w := &runspec.WorkloadSpec{Length: length, Seed: 42}
	for i := 0; i < tenants; i++ {
		seed := int64(i + 1)
		w.Tenants = append(w.Tenants, runspec.TenantSpec{
			Stream: fmt.Sprintf("zipf:%d,0.9", pagesPer), Seed: &seed,
		})
	}
	tr, err := (&runspec.Scenario{Trace: runspec.TraceSpec{Workload: w}}).BuildTrace()
	if err != nil {
		fatal(err)
	}
	return tr
}

func benchCosts(tenants int) []costfn.Func {
	costs := make([]costfn.Func, tenants)
	for i := range costs {
		if i%2 == 0 {
			costs[i] = costfn.Monomial{C: 1, Beta: 2}
		} else {
			costs[i] = costfn.Linear{W: float64(i + 1)}
		}
	}
	return costs
}

// throughputSuite is the E10 matrix: policies x cache sizes on the shared
// large trace, reported as requests/sec.
func throughputSuite() []Result {
	tr := benchTrace(4, 4096, 200_000)
	tr.Dense() // densify once, outside every measured region
	costs := benchCosts(4)
	type entry struct {
		name string
		mk   func() sim.Policy
		ks   []int
	}
	all := []int{256, 4096, 65536}
	suite := []entry{
		{"fast", func() sim.Policy { return core.NewFast(core.Options{Costs: costs}) }, all},
		// The reference implementation is O(cache) per eviction; only the
		// smallest size is tractable at benchmark scale.
		{"discrete", func() sim.Policy { return core.NewDiscrete(core.Options{Costs: costs}) }, []int{256}},
		{"lru", func() sim.Policy { return policy.NewLRU() }, all},
		{"greedy-dual", func() sim.Policy { return policy.NewGreedyDual([]float64{1, 2, 3, 4}) }, all},
	}
	var out []Result
	for _, e := range suite {
		for _, k := range e.ks {
			name := fmt.Sprintf("throughput/%s/k=%d", e.name, k)
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					p := e.mk()
					if _, err := runspec.Run(tr, p, k); err != nil {
						b.Fatal(err)
					}
				}
			})
			res := toResult(name, r)
			res.ReqPerSec = float64(tr.Len()*r.N) / r.T.Seconds()
			out = append(out, res)
			fmt.Fprintf(os.Stderr, "bench: %-28s %12.0f req/s %8d allocs/op\n", name, res.ReqPerSec, res.AllocsPerOp)
		}
	}
	return out
}

// experimentSuite benchmarks each experiment table end to end in quick mode,
// the same measurements as the BenchmarkExp* functions in bench_test.go.
func experimentSuite() []Result {
	var out []Result
	for _, e := range experiments.All() {
		run := e.Run
		name := "experiment/" + e.ID
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tb, err := run(true)
				if err != nil {
					b.Fatal(err)
				}
				if tb.NumRows() == 0 {
					b.Fatal("experiment produced no rows")
				}
			}
		})
		out = append(out, toResult(name, r))
		fmt.Fprintf(os.Stderr, "bench: %-28s %12.2f ms/op\n", name, float64(r.NsPerOp())/1e6)
	}
	return out
}

func toResult(name string, r testing.BenchmarkResult) Result {
	return Result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
