// Command mrc computes exact LRU miss-ratio curves from a trace using
// Mattson's stack-distance algorithm, per tenant and combined, and can also
// report the optimal static partition for a given cache size and cost
// specs.
//
// Usage:
//
//	mrc -trace t.txt -max 256
//	mrc -trace t.txt -max 256 -k 64 -cost monomial:1,2 -cost linear:1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"convexcache/internal/analysis"
	"convexcache/internal/runspec"
	"convexcache/internal/stats"
)

type costFlags []string

func (c *costFlags) String() string { return strings.Join(*c, ";") }
func (c *costFlags) Set(v string) error {
	*c = append(*c, v)
	return nil
}

func main() {
	tracePath := flag.String("trace", "", "trace file (text format); '-' for stdin")
	maxSize := flag.Int("max", 128, "largest cache size to evaluate")
	points := flag.Int("points", 16, "number of curve points to print")
	k := flag.Int("k", 0, "when > 0, also compute the optimal static partition for this budget")
	var costSpecs costFlags
	flag.Var(&costSpecs, "cost", "per-tenant cost function spec for the partition (repeatable)")
	flag.Parse()

	if *tracePath == "" {
		fatal(fmt.Errorf("-trace is required"))
	}
	tr, err := (&runspec.Scenario{Trace: runspec.TraceSpec{File: *tracePath}}).BuildTrace()
	if err != nil {
		fatal(err)
	}
	combined, err := analysis.Mattson(tr, *maxSize)
	if err != nil {
		fatal(err)
	}
	perTenant, err := analysis.PerTenant(tr, *maxSize)
	if err != nil {
		fatal(err)
	}
	header := []string{"size", "all"}
	for i := range perTenant {
		header = append(header, fmt.Sprintf("t%d", i))
	}
	tb := stats.NewTable(fmt.Sprintf("LRU miss ratio, T=%d, %d tenants", tr.Len(), tr.NumTenants()), header...)
	step := *maxSize / *points
	if step < 1 {
		step = 1
	}
	for c := step; c <= *maxSize; c += step {
		row := []any{c, ratio(combined, c)}
		for _, pt := range perTenant {
			row = append(row, ratio(pt, c))
		}
		tb.AddRow(row...)
	}
	if err := tb.WriteMarkdown(os.Stdout); err != nil {
		fatal(err)
	}

	if *k > 0 {
		costs, err := runspec.Costs(costSpecs, tr.NumTenants())
		if err != nil {
			fatal(err)
		}
		quotas, cost, err := analysis.OptimalStaticPartition(perTenant, costs, *k)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("optimal static partition for k=%d: quotas=%v predicted cost=%.2f\n", *k, quotas, cost)
	}
}

func ratio(r analysis.StackResult, c int) float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.MissesAt(c)) / float64(r.Requests)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mrc:", err)
	os.Exit(1)
}
