// Command check runs the full correctness-oracle matrix from internal/check:
// every policy x engine pair (dense vs map engine, core.Fast vs the Figure-3
// Discrete reference, snapshot round trips, Reset reuse, full invariant
// suites for every registry baseline) over every workload shape and cache
// size, plus the Theorem 1.1 bound against exact offline OPT on small
// instances.
//
// Usage:
//
//	check [-steps N] [-seed S] [-ks 4,64,256] [-theorem N] [-q]
//
// The process exits non-zero on the first violated cell, printing the
// oracle, workload, cache size, diverging step and — for differential
// failures — a minimized repro trace in the text trace format (replayable
// with cmd/convexsim or a new testdata regression file).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"convexcache/internal/check"
)

func main() {
	steps := flag.Int("steps", 20000, "per-workload trace length")
	seed := flag.Int64("seed", 1, "workload generator seed")
	ksFlag := flag.String("ks", "4,64,256", "comma-separated cache sizes")
	theorem := flag.Int("theorem", 4, "number of small Theorem 1.1 instances (0 disables)")
	quiet := flag.Bool("q", false, "only print failures and the summary")
	flag.Parse()

	ks, err := parseKs(*ksFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "check:", err)
		os.Exit(2)
	}

	cfg := check.MatrixConfig{Steps: *steps, Seed: *seed, Ks: ks, TheoremInstances: *theorem}
	start := time.Now()
	cells := 0
	report := func(r check.MatrixResult) {
		cells++
		if r.Err != nil {
			fmt.Printf("FAIL %-34s %-14s k=%-4d %v\n", r.Oracle, r.Workload, r.K, r.Err)
			if d, ok := r.Err.(*check.Divergence); ok && d.Repro != nil {
				fmt.Printf("minimized repro (%d requests):\n%s", d.Repro.Len(), d.ReproString())
			}
			return
		}
		if !*quiet {
			fmt.Printf("ok   %-34s %-14s k=%d\n", r.Oracle, r.Workload, r.K)
		}
	}
	if err := check.RunMatrix(cfg, report); err != nil {
		fmt.Fprintf(os.Stderr, "check: FAILED after %d cells in %v: %v\n", cells, time.Since(start).Round(time.Millisecond), err)
		os.Exit(1)
	}
	fmt.Printf("check: all %d cells passed in %v\n", cells, time.Since(start).Round(time.Millisecond))
}

// parseKs parses the -ks flag.
func parseKs(s string) ([]int, error) {
	var ks []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, err := strconv.Atoi(part)
		if err != nil || k <= 0 {
			return nil, fmt.Errorf("invalid cache size %q", part)
		}
		ks = append(ks, k)
	}
	if len(ks) == 0 {
		return nil, fmt.Errorf("no cache sizes in %q", s)
	}
	return ks, nil
}
