// Command serve runs the convexcache HTTP service (see internal/server for
// the API) with production lifecycle behavior: structured logs, Prometheus
// metrics on /metrics, an optional pprof debug listener, and graceful
// shutdown — SIGINT/SIGTERM stops accepting connections, drains in-flight
// requests for up to -shutdown-grace, then exits 0.
//
// Overload protection (internal/resilience) is tunable from the command
// line: the server-wide concurrency limiter and its FIFO wait queue
// (-max-concurrent, -queue-depth, -queue-wait), per-client rate limiting
// (-rate-rps, -rate-burst), the per-endpoint circuit breakers
// (-breaker-failures, -breaker-open-for), and the async job subsystem
// (-job-workers, -job-store, -checkpoint-every). -fault enables seeded
// fault injection for chaos drills, e.g.
// -fault "seed=7,latency=20ms,latency_p=0.3,error_p=0.2,panic_p=0.05".
//
// Usage:
//
//	serve -addr :8080 [-pprof 127.0.0.1:6060] [-log-format text|json]
//	      [-read-timeout 1m] [-write-timeout 2m] [-idle-timeout 2m]
//	      [-shutdown-grace 30s] [-max-body 16777216]
//	      [-max-concurrent N] [-queue-depth N] [-queue-wait 10s]
//	      [-rate-rps R] [-rate-burst B]
//	      [-breaker-failures N] [-breaker-open-for 10s]
//	      [-job-workers N] [-job-store N] [-checkpoint-every N]
//	      [-fault "seed=7,error_p=0.2,..."]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"convexcache/internal/fault"
	"convexcache/internal/obs"
	"convexcache/internal/resilience"
	"convexcache/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		pprofAddr     = flag.String("pprof", "", "pprof debug listen address (e.g. 127.0.0.1:6060); empty disables")
		logFormat     = flag.String("log-format", "text", "log format: text or json")
		readTimeout   = flag.Duration("read-timeout", time.Minute, "max duration for reading a request")
		writeTimeout  = flag.Duration("write-timeout", 2*time.Minute, "max duration for writing a response")
		idleTimeout   = flag.Duration("idle-timeout", 2*time.Minute, "max keep-alive idle time")
		headerTimeout = flag.Duration("read-header-timeout", 10*time.Second, "max duration for reading request headers")
		shutdownGrace = flag.Duration("shutdown-grace", 30*time.Second, "in-flight request drain budget on SIGINT/SIGTERM")
		maxBody       = flag.Int64("max-body", server.MaxBodyBytes, "request body cap in bytes")

		maxConcurrent = flag.Int("max-concurrent", 0, "concurrent expensive requests (0 = GOMAXPROCS)")
		queueDepth    = flag.Int("queue-depth", 0, "wait-queue slots behind the concurrency limit (0 = default)")
		queueWait     = flag.Duration("queue-wait", 0, "max time a request may wait for a slot (0 = default 10s)")
		rateRPS       = flag.Float64("rate-rps", 0, "per-client sustained requests/second on expensive endpoints (0 disables)")
		rateBurst     = flag.Float64("rate-burst", 0, "per-client burst allowance (0 = 2x rate-rps)")
		breakFails    = flag.Int("breaker-failures", 0, "consecutive failures that open an endpoint's circuit (0 = default 5)")
		breakOpenFor  = flag.Duration("breaker-open-for", 0, "cooldown before an open circuit half-opens (0 = default 10s)")
		jobWorkers    = flag.Int("job-workers", 0, "async job worker-pool size (0 = default 2)")
		jobStore      = flag.Int("job-store", 0, "max job records retained (0 = default 256)")
		ckptEvery     = flag.Int("checkpoint-every", 0, "checkpoint cadence in steps for async alg jobs (0 = default 65536)")
		faultSpec     = flag.String("fault", "", `fault-injection spec for chaos drills, e.g. "seed=7,latency=20ms,latency_p=0.3,error_p=0.2,panic_p=0.05"`)
	)
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "unknown -log-format %q (want text or json)\n", *logFormat)
		return 2
	}
	logger := slog.New(handler)

	reg := obs.NewRegistry()
	cfg := server.Config{
		Logger:       logger,
		Registry:     reg,
		MaxBodyBytes: *maxBody,
		Limiter: resilience.LimiterConfig{
			MaxConcurrent: *maxConcurrent,
			MaxQueue:      *queueDepth,
			MaxWait:       *queueWait,
		},
		RateLimit: resilience.RateLimiterConfig{RPS: *rateRPS, Burst: *rateBurst},
		Breaker: resilience.BreakerConfig{
			FailureThreshold: *breakFails,
			OpenFor:          *breakOpenFor,
		},
		Jobs: resilience.JobsConfig{
			Workers:         *jobWorkers,
			MaxJobs:         *jobStore,
			CheckpointEvery: *ckptEvery,
		},
	}
	if *faultSpec != "" {
		fcfg, err := fault.ParseSpec(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		inj := fault.New(fcfg, reg)
		cfg.Fault = inj.Middleware
		logger.Warn("fault injection enabled", "spec", *faultSpec)
	}
	svc := server.NewService(cfg)
	defer svc.Close()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: *headerTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
		ErrorLog:          slog.NewLogLogger(handler, slog.LevelWarn),
	}

	// The debug listener is separate from the API listener so pprof is
	// never exposed on the public port.
	var debugSrv *http.Server
	if *pprofAddr != "" {
		dm := http.NewServeMux()
		dm.HandleFunc("/debug/pprof/", pprof.Index)
		dm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv = &http.Server{Addr: *pprofAddr, Handler: dm, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof listener failed", "err", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Info("convexcache API listening", "addr", *addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		logger.Error("listener failed", "err", err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	logger.Info("shutting down, draining in-flight requests", "grace", shutdownGrace.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	code := 0
	if err := srv.Shutdown(drainCtx); err != nil {
		logger.Error("drain incomplete, forcing close", "err", err)
		_ = srv.Close()
		code = 1
	}
	if debugSrv != nil {
		_ = debugSrv.Close()
	}
	logger.Info("shutdown complete")
	return code
}
