// Command serve runs the convexcache HTTP service (see internal/server for
// the API) with production lifecycle behavior: structured logs, Prometheus
// metrics on /metrics, an optional pprof debug listener, and graceful
// shutdown — SIGINT/SIGTERM stops accepting connections, drains in-flight
// requests for up to -shutdown-grace, then exits 0.
//
// Usage:
//
//	serve -addr :8080 [-pprof 127.0.0.1:6060] [-log-format text|json]
//	      [-read-timeout 1m] [-write-timeout 2m] [-idle-timeout 2m]
//	      [-shutdown-grace 30s] [-max-body 16777216]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"convexcache/internal/obs"
	"convexcache/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		pprofAddr     = flag.String("pprof", "", "pprof debug listen address (e.g. 127.0.0.1:6060); empty disables")
		logFormat     = flag.String("log-format", "text", "log format: text or json")
		readTimeout   = flag.Duration("read-timeout", time.Minute, "max duration for reading a request")
		writeTimeout  = flag.Duration("write-timeout", 2*time.Minute, "max duration for writing a response")
		idleTimeout   = flag.Duration("idle-timeout", 2*time.Minute, "max keep-alive idle time")
		headerTimeout = flag.Duration("read-header-timeout", 10*time.Second, "max duration for reading request headers")
		shutdownGrace = flag.Duration("shutdown-grace", 30*time.Second, "in-flight request drain budget on SIGINT/SIGTERM")
		maxBody       = flag.Int64("max-body", server.MaxBodyBytes, "request body cap in bytes")
	)
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "unknown -log-format %q (want text or json)\n", *logFormat)
		return 2
	}
	logger := slog.New(handler)

	reg := obs.NewRegistry()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.NewWithConfig(server.Config{Logger: logger, Registry: reg, MaxBodyBytes: *maxBody}),
		ReadHeaderTimeout: *headerTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
		ErrorLog:          slog.NewLogLogger(handler, slog.LevelWarn),
	}

	// The debug listener is separate from the API listener so pprof is
	// never exposed on the public port.
	var debugSrv *http.Server
	if *pprofAddr != "" {
		dm := http.NewServeMux()
		dm.HandleFunc("/debug/pprof/", pprof.Index)
		dm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv = &http.Server{Addr: *pprofAddr, Handler: dm, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof listener failed", "err", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Info("convexcache API listening", "addr", *addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		logger.Error("listener failed", "err", err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	logger.Info("shutting down, draining in-flight requests", "grace", shutdownGrace.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	code := 0
	if err := srv.Shutdown(drainCtx); err != nil {
		logger.Error("drain incomplete, forcing close", "err", err)
		_ = srv.Close()
		code = 1
	}
	if debugSrv != nil {
		_ = debugSrv.Close()
	}
	logger.Info("shutdown complete")
	return code
}
