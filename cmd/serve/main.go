// Command serve runs the convexcache HTTP service (see internal/server for
// the API).
//
// Usage:
//
//	serve -addr :8080
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"convexcache/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      2 * time.Minute,
	}
	log.Printf("convexcache API listening on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
